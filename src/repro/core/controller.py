"""The Assist Warp Controller (AWC), Table (AWT) and Buffer (AWB).

One :class:`CabaController` lives in each SM and implements the
mechanism of Sections 3.3-3.4 and the compression walkthrough of
Section 4.2:

* **Triggers.** Compressed L1 fills trigger *high-priority* (blocking)
  decompression assist warps; buffered stores trigger *low-priority*
  compression assist warps.
* **AWT.** Triggered instances occupy Assist Warp Table entries; when
  the table is full, decompression triggers queue (they are required
  for correctness) while compression triggers simply wait in the store
  buffer.
* **Deployment.** Every cycle the AWC stages up to ``deploy_width``
  instructions from active assist warps into the AWB, round-robin, each
  warp bounded by its instruction-buffer partition depth.
* **Scheduling.** High-priority assist warps preempt their parent
  scheduler's warps; low-priority warps (bounded by the two-entry AWB
  low-priority partition) issue only into otherwise-idle slots, and the
  utilization monitor throttles their creation entirely when the
  pipelines are already busy.
* **Store buffer.** Pending stores wait in a small buffer for their
  compression assist warp; on overflow the oldest entry is released
  uncompressed and its assist warp, if any, is killed (AWT/AWB flush).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.aws import AssistWarpStore
from repro.core.base import AssistController
from repro.core.params import CabaParams
from repro.core.subroutines import SubroutineLibrary
from repro.gpu.isa import AssistProgram
from repro.gpu.warp import WarpContext, touch
from repro.memory.hierarchy import LineFill

HIGH = 0
LOW = 1


class ActiveAssistWarp:
    """One live AWT entry: a triggered assist-warp instance."""

    #: Assist warps are never mirrored into the SoA arrays; the shared
    #: issue paths (``SM._hold_registers``) test this before syncing.
    soa = None

    __slots__ = (
        "parent",
        "program",
        "pc",
        "deployed",
        "pending_mask",
        "priority",
        "task",
        "line",
        "cancelled",
        "blocking",
        "spawn_cycle",
    )

    def __init__(
        self,
        parent: WarpContext,
        program: AssistProgram,
        priority: int,
        task: str,
        line: int,
    ) -> None:
        self.parent = parent
        self.program = program
        self.pc = 0
        self.deployed = 0
        self.pending_mask = 0
        self.priority = priority
        self.task = task
        self.line = line
        self.cancelled = False
        #: Whether this instance bumped its parent's ``assist_block``.
        self.blocking = False
        #: Cycle the instance entered the AWT (observability only).
        self.spawn_cycle = 0


@dataclass
class _DecompressionEntry:
    line: int
    encoding: str
    owner: WarpContext
    callbacks: list[Callable[[], None]] = field(default_factory=list)
    assist: ActiveAssistWarp | None = None
    activated: bool = False


@dataclass
class _StoreEntry:
    line: int
    parent: WarpContext
    full_line: bool
    state: str = "waiting"  # waiting | compressing | released
    assist: ActiveAssistWarp | None = None


@dataclass
class CabaStats:
    """Per-SM framework counters."""

    decompressions_triggered: int = 0
    compressions_triggered: int = 0
    assist_warps_completed: int = 0
    assist_warps_cancelled: int = 0
    stores_released_compressed: int = 0
    stores_released_uncompressed: int = 0
    store_buffer_overflows: int = 0
    throttled_cycles: int = 0
    awt_full_events: int = 0


class CabaController(AssistController):
    """Per-SM CABA machinery (AWC + AWT + AWB + store buffer)."""

    def __init__(
        self,
        sm,
        params: CabaParams,
        library: SubroutineLibrary,
        algorithm: str,
        aws: AssistWarpStore | None = None,
        programs: dict | None = None,
    ) -> None:
        super().__init__(sm)
        self.params = params
        self.library = library
        self.algorithm = algorithm
        self.aws = aws if aws is not None else AssistWarpStore()
        self.stats = CabaStats()
        #: Observability layer (repro.obs.RunObservation); None = off.
        self.obs = None
        #: Decompression program per encoding. Prebuilt from the image's
        #: compression plane when one exists (every encoding in the image
        #: is known upfront); unseen encodings fall back to the library
        #: and are memoized here.
        self._programs: dict[str, AssistProgram] = (
            dict(programs) if programs else {}
        )

        n_sched = sm.config.schedulers_per_sm
        self._awt: list[ActiveAssistWarp] = []
        self._high: list[deque[ActiveAssistWarp]] = [
            deque() for _ in range(n_sched)
        ]
        self._low: list[ActiveAssistWarp] = []
        self._deploy_rr = 0

        self._decomp: dict[int, _DecompressionEntry] = {}
        self._decomp_awt_queue: deque[_DecompressionEntry] = deque()
        self._parent_decomp_queue: dict[int, deque[_DecompressionEntry]] = {}
        self._busy_decomp_parents: set[int] = set()

        self._store_buffer: deque[_StoreEntry] = deque()
        self._busy_compress_parents: set[int] = set()

        # O(1) pending-work accounting (has_pending_work runs inside the
        # fast-forward hot path): AWT entries with instructions left to
        # deploy, and store-buffer entries still waiting for an assist
        # warp.
        self._undeployed = 0
        self._waiting_stores = 0

        self._utilization = 0.0
        self._now = 0
        # observe() runs once per SM per cycle; keep its knobs out of
        # the dataclass attribute path.
        self._ema_alpha = params.utilization_ema_alpha
        self._throttling = params.throttling_enabled
        self._throttle_threshold = params.throttle_threshold

        # Preload the compression subroutine into the AWS; decompression
        # subroutines are registered lazily per encoding encountered.
        self.aws.register("compress", algorithm, library.compression(algorithm))

    # ------------------------------------------------------------------
    # Per-cycle work (called from SM.tick)
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        self._now = cycle
        self._deploy(cycle)
        self._spawn_compressions(cycle)

    def observe(self, issued: int, slots: int) -> None:
        """Feed the AWC's functional-unit utilization monitor."""
        u = self._utilization + self._ema_alpha * (
            issued / slots - self._utilization
        )
        self._utilization = u
        if self._throttling and u > self._throttle_threshold:
            self.stats.throttled_cycles += 1

    @property
    def throttled(self) -> bool:
        return self._throttling and self._utilization > self._throttle_threshold

    def has_pending_work(self) -> bool:
        """Whether the controller needs the SM ticked next cycle (used to
        bound fast-forwarding)."""
        return self._undeployed > 0 or self._waiting_stores > 0

    # ------------------------------------------------------------------
    # Deployment (AWC -> AWB staging)
    # ------------------------------------------------------------------
    def _deploy(self, cycle: int) -> None:
        if not self._awt:
            return
        n = len(self._awt)
        if self._undeployed == 0:
            # Nothing left to stage; still rotate so deployment order is
            # unchanged relative to the scanning version.
            self._deploy_rr = (self._deploy_rr + 1) % n
            return
        budget = self.params.deploy_width
        for i in range(n):
            if budget == 0:
                break
            aw = self._awt[(self._deploy_rr + i) % n]
            if aw.cancelled:
                continue
            body_len = len(aw.program.body)
            if aw.deployed >= body_len:
                continue
            if aw.deployed - aw.pc >= self.params.ib_stage_depth:
                continue
            aw.deployed += 1
            if aw.deployed >= body_len:
                self._undeployed -= 1
            budget -= 1
        self._deploy_rr = (self._deploy_rr + 1) % max(1, n)

    # ------------------------------------------------------------------
    # Issue hooks (called from SM._issue_slot)
    # ------------------------------------------------------------------
    def issue_high(self, sched: int, cycle: int) -> bool:
        dq = self._high[sched]
        for _ in range(len(dq)):
            aw = dq[0]
            pc = aw.pc
            program = aw.program
            if aw.cancelled or pc >= len(program.body):
                dq.popleft()
                continue
            if pc >= aw.deployed or aw.pending_mask & program.need[pc]:
                # Undeployed or scoreboard-blocked: try_issue_assist
                # would reject it the same way, without side effects.
                dq.rotate(-1)
                continue
            if self.sm.try_issue_assist(aw, cycle):
                if aw.pc >= len(program.body):
                    dq.popleft()
                return True
            dq.rotate(-1)
        return False

    def issue_low(self, sched: int, cycle: int) -> bool:
        for aw in self._low:
            pc = aw.pc
            program = aw.program
            if aw.cancelled or pc >= len(program.body):
                continue
            if pc >= aw.deployed or aw.pending_mask & program.need[pc]:
                continue
            if self.sm.try_issue_assist(aw, cycle):
                return True
        return False

    # ------------------------------------------------------------------
    # Decompression (high priority, triggered by compressed fills)
    # ------------------------------------------------------------------
    def pending_decompression(self, line: int) -> bool:
        return line in self._decomp

    def attach_to_decompression(self, line: int, callback: Callable[[], None]) -> None:
        self._decomp[line].callbacks.append(callback)

    def request_decompression(
        self,
        warp: WarpContext,
        fill: LineFill,
        callback: Callable[[], None],
        cycle: int,
    ) -> None:
        """Register interest in the decompressed form of ``fill.line``.

        The assist warp is triggered when the compressed line lands in
        the L1 (the fill time); ``callback`` fires when the subroutine
        completes and the data is usable.
        """
        entry = self._decomp.get(fill.line)
        if entry is not None:
            entry.callbacks.append(callback)
            return
        entry = _DecompressionEntry(
            line=fill.line, encoding=fill.encoding, owner=warp
        )
        entry.callbacks.append(callback)
        self._decomp[fill.line] = entry
        self.sm.schedule(
            math.ceil(fill.fill_time), lambda: self._activate_decompression(entry)
        )

    def _activate_decompression(self, entry: _DecompressionEntry) -> None:
        entry.activated = True
        owner_key = id(entry.owner)
        if owner_key in self._busy_decomp_parents:
            # Only one instance of each subroutine per parent warp
            # (Section 3.2.2): queue behind the active one.
            self._parent_decomp_queue.setdefault(owner_key, deque()).append(entry)
            return
        if len(self._awt) >= self.params.awt_capacity:
            self.stats.awt_full_events += 1
            self._decomp_awt_queue.append(entry)
            return
        self._spawn_decompression(entry)

    def _spawn_decompression(self, entry: _DecompressionEntry) -> None:
        program = self._programs.get(entry.encoding)
        if program is None:
            program = self.library.decompression(self.algorithm, entry.encoding)
            self._programs[entry.encoding] = program
        self.aws.register("decompress", entry.encoding, program)
        priority = HIGH if self.params.decompression_high_priority else LOW
        aw = ActiveAssistWarp(
            parent=entry.owner,
            program=program,
            priority=priority,
            task="decompress",
            line=entry.line,
        )
        aw.spawn_cycle = self._now
        entry.assist = aw
        self._awt.append(aw)
        if aw.deployed < len(program.body):
            self._undeployed += 1
        self._busy_decomp_parents.add(id(entry.owner))
        if priority == HIGH:
            # A blocking assist warp stalls its parent until it completes
            # (Section 4.2.1).
            if not entry.owner.finished:
                entry.owner.assist_block += 1
                if entry.owner.soa is not None:
                    touch(entry.owner)
                aw.blocking = True
            self._high[entry.owner.sched].append(aw)
        else:
            self._low.append(aw)
        self.stats.decompressions_triggered += 1

    def _pump_decompression_queues(self, owner: WarpContext) -> None:
        """After a decompression finishes, start queued work."""
        owner_key = id(owner)
        queue = self._parent_decomp_queue.get(owner_key)
        if queue:
            entry = queue.popleft()
            if not queue:
                del self._parent_decomp_queue[owner_key]
            if len(self._awt) < self.params.awt_capacity:
                self._spawn_decompression(entry)
            else:
                self._decomp_awt_queue.append(entry)
        while self._decomp_awt_queue and len(self._awt) < self.params.awt_capacity:
            entry = self._decomp_awt_queue.popleft()
            if id(entry.owner) in self._busy_decomp_parents:
                self._parent_decomp_queue.setdefault(
                    id(entry.owner), deque()
                ).append(entry)
                continue
            self._spawn_decompression(entry)

    # ------------------------------------------------------------------
    # Compression (low priority, triggered by buffered stores)
    # ------------------------------------------------------------------
    def buffer_store(
        self, warp: WarpContext, lines, full_line: bool, cycle: int
    ) -> None:
        """Stage store lines in the pending-store buffer (Section 4.2.2)."""
        for line in lines:
            if any(
                e.line == line and e.state != "released"
                for e in self._store_buffer
            ):
                continue  # merged with a pending store to the same line
            while len(self._store_buffer) >= self.params.store_buffer_lines:
                self._overflow_release(cycle)
            self._store_buffer.append(
                _StoreEntry(line=line, parent=warp, full_line=full_line)
            )
            self._waiting_stores += 1

    def _overflow_release(self, cycle: int) -> None:
        """Buffer full: release the oldest entry uncompressed."""
        entry = self._store_buffer.popleft()
        self.stats.store_buffer_overflows += 1
        if entry.state == "compressing" and entry.assist is not None:
            self._cancel(entry.assist)
        if entry.state != "released":
            if entry.state == "waiting":
                self._waiting_stores -= 1
            self._release_store(entry, compressed=False, cycle=cycle)

    def _spawn_compressions(self, cycle: int) -> None:
        if self._waiting_stores == 0 or self.throttled:
            return
        active_low = sum(
            1
            for aw in self._low
            if not aw.cancelled and aw.pc < len(aw.program.body)
        )
        for entry in self._store_buffer:
            if active_low >= self.params.low_priority_slots:
                break
            if len(self._awt) >= self.params.awt_capacity:
                break
            if entry.state != "waiting":
                continue
            if id(entry.parent) in self._busy_compress_parents:
                continue
            self._spawn_compression(entry)
            active_low += 1

    def _spawn_compression(self, entry: _StoreEntry) -> None:
        program = self.library.compression(self.algorithm)
        aw = ActiveAssistWarp(
            parent=entry.parent,
            program=program,
            priority=LOW,
            task="compress",
            line=entry.line,
        )
        aw.spawn_cycle = self._now
        entry.state = "compressing"
        self._waiting_stores -= 1
        entry.assist = aw
        self._awt.append(aw)
        if aw.deployed < len(program.body):
            self._undeployed += 1
        self._low.append(aw)
        self._busy_compress_parents.add(id(entry.parent))
        self.stats.compressions_triggered += 1

    def _release_store(self, entry: _StoreEntry, compressed: bool, cycle: int) -> None:
        entry.state = "released"
        self.sm.memory.store(
            self.sm.sm_id,
            entry.line,
            cycle,
            full_line=entry.full_line,
            compressed_by_core=compressed,
        )
        if compressed:
            self.stats.stores_released_compressed += 1
        else:
            self.stats.stores_released_uncompressed += 1

    # ------------------------------------------------------------------
    # Completion / cancellation
    # ------------------------------------------------------------------
    def finish(self, aw: ActiveAssistWarp) -> None:
        """Last instruction of ``aw`` wrote back: retire the assist warp."""
        if aw.cancelled:
            return
        self._remove_from_awt(aw)
        self.stats.assist_warps_completed += 1
        self.sm.stats.assist_warps_completed += 1
        now = self._now + 1
        if self.obs is not None:
            self.obs.assist_event(
                self.sm.sm_id, aw.task, aw.line, aw.spawn_cycle, now,
                completed=True,
            )
        if aw.task == "decompress":
            entry = self._decomp.pop(aw.line, None)
            self._unblock(aw)
            self._busy_decomp_parents.discard(id(aw.parent))
            if entry is not None:
                for callback in entry.callbacks:
                    callback()
            self._pump_decompression_queues(aw.parent)
        elif aw.task == "compress":
            self._busy_compress_parents.discard(id(aw.parent))
            for entry in list(self._store_buffer):
                if entry.assist is aw:
                    self._store_buffer.remove(entry)
                    self._release_store(entry, compressed=True, cycle=now)
                    break
        else:
            # Custom tasks (memoization, prefetch) handle their own
            # completion through callbacks attached at spawn time.
            self._unblock(aw)

    def _unblock(self, aw: ActiveAssistWarp) -> None:
        if aw.blocking:
            aw.parent.assist_block -= 1
            if aw.parent.soa is not None:
                touch(aw.parent)
            aw.blocking = False

    def _cancel(self, aw: ActiveAssistWarp) -> None:
        """Kill an assist warp: flush its AWT and AWB state (Section 3.4)."""
        aw.cancelled = True
        self._unblock(aw)
        self._remove_from_awt(aw)
        if aw in self._low:
            self._low.remove(aw)
        self._busy_compress_parents.discard(id(aw.parent))
        self.stats.assist_warps_cancelled += 1
        self.sm.stats.assist_warps_cancelled += 1
        if self.obs is not None:
            self.obs.assist_event(
                self.sm.sm_id, aw.task, aw.line, aw.spawn_cycle, self._now,
                completed=False,
            )

    def _remove_from_awt(self, aw: ActiveAssistWarp) -> None:
        if aw in self._awt:
            self._awt.remove(aw)
            if aw.deployed < len(aw.program.body):
                self._undeployed -= 1
        if aw in self._low:
            self._low.remove(aw)

    # ------------------------------------------------------------------
    # End of kernel
    # ------------------------------------------------------------------
    def flush(self, cycle: int) -> None:
        """Drain the store buffer at kernel end.

        Entries whose compression assist warp is still running count as
        compressed (it completes while the writeback is in flight);
        entries never picked up are released uncompressed.
        """
        while self._store_buffer:
            entry = self._store_buffer.popleft()
            if entry.state == "released":
                continue
            self._release_store(
                entry, compressed=entry.state == "compressing", cycle=cycle
            )
        self._waiting_stores = 0

    # ------------------------------------------------------------------
    @property
    def awt_occupancy(self) -> int:
        return len(self._awt)

    @property
    def store_buffer_occupancy(self) -> int:
        return len(self._store_buffer)
