"""Tunable parameters of the CABA framework (Sections 3.3-3.4)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CabaParams:
    """Knobs of the assist-warp machinery.

    Defaults follow the paper's design description; the ablation
    benchmarks sweep several of them.
    """

    #: Assist Warp Table capacity (outstanding assist-warp instances).
    awt_capacity: int = 48
    #: Instructions the AWC decodes/stages per cycle (fetch/decode width).
    deploy_width: int = 2
    #: Per-assist-warp staging depth in the instruction buffer partition.
    ib_stage_depth: int = 2
    #: Entries of the dedicated low-priority AWB partition — how many
    #: low-priority assist warps can be in flight at once (Section 3.3).
    low_priority_slots: int = 2
    #: Lines the pending-store buffer holds (dedicated L1 sets / shared
    #: memory, Section 4.2.2); overflow releases stores uncompressed.
    store_buffer_lines: int = 16
    #: Issue-slot utilization (EMA) above which the AWC throttles
    #: low-priority assist-warp deployment (Section 3.4).
    throttle_threshold: float = 0.75
    #: EMA smoothing factor for the utilization monitor.
    utilization_ema_alpha: float = 0.05
    #: Disable dynamic throttling entirely (ablation knob).
    throttling_enabled: bool = True
    #: Run decompression at low priority instead of high (ablation knob;
    #: the paper argues decompression must be high priority).
    decompression_high_priority: bool = True

    def __post_init__(self) -> None:
        if self.awt_capacity < 1:
            raise ValueError("awt_capacity must be >= 1")
        if self.deploy_width < 1:
            raise ValueError("deploy_width must be >= 1")
        if self.low_priority_slots < 1:
            raise ValueError("low_priority_slots must be >= 1")
        if self.store_buffer_lines < 1:
            raise ValueError("store_buffer_lines must be >= 1")
        if not 0.0 < self.throttle_threshold <= 1.0:
            raise ValueError("throttle_threshold must be in (0, 1]")
        if not 0.0 < self.utilization_ema_alpha <= 1.0:
            raise ValueError("utilization_ema_alpha must be in (0, 1]")
