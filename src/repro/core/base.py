"""The SM-facing assist-controller interface.

The SM pipeline talks to whatever CABA application is installed (data
compression, memoization, prefetching) through this small surface: a
per-cycle ``tick``, the two issue hooks (high priority preempts parent
warps, low priority fills idle slots), trigger callbacks, and
``finish`` for completed assist warps. Concrete applications override
the hooks they need; everything defaults to "no work".
"""

from __future__ import annotations

from typing import Callable

from repro.gpu.warp import WarpContext


class AssistController:
    """Base class for per-SM CABA applications."""

    def __init__(self, sm) -> None:
        self.sm = sm

    # --- per-cycle hooks ------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Called at the start of every SM cycle (deployment etc.)."""

    def observe(self, issued: int, slots: int) -> None:
        """Utilization feedback for throttling decisions."""

    def has_pending_work(self) -> bool:
        """Whether the SM must keep ticking cycle by cycle."""
        return False

    # --- issue hooks ------------------------------------------------------
    def issue_high(self, sched: int, cycle: int) -> bool:
        """Try to issue a high-priority assist instruction; True if issued."""
        return False

    def issue_low(self, sched: int, cycle: int) -> bool:
        """Try to issue a low-priority assist instruction into an
        otherwise-idle slot; True if issued."""
        return False

    # --- triggers ---------------------------------------------------------
    def request_decompression(
        self,
        warp: WarpContext,
        fill,
        callback: Callable[[], None],
        cycle: int,
    ) -> None:
        """A compressed line needs expanding before ``callback`` may fire."""
        raise NotImplementedError(
            f"{type(self).__name__} does not handle decompression triggers"
        )

    def pending_decompression(self, line: int) -> bool:
        return False

    def attach_to_decompression(self, line: int, callback) -> None:
        raise NotImplementedError

    def buffer_store(self, warp: WarpContext, lines, full_line: bool, cycle: int) -> None:
        """Stage store lines for compression before writeback."""
        raise NotImplementedError(
            f"{type(self).__name__} does not handle store buffering"
        )

    def on_global_load(self, warp: WarpContext, lines, cycle: int) -> None:
        """Observe a demand load (prefetcher training hook)."""

    def on_memo_point(self, warp: WarpContext, region_len: int, cycle: int) -> None:
        """A warp reached a memoizable region marker."""

    # --- completion ---------------------------------------------------------
    def finish(self, assist) -> None:
        """The last instruction of ``assist`` wrote back."""

    def flush(self, cycle: int) -> None:
        """Kernel end: drain any buffered work."""
