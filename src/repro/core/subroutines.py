"""Assist-warp subroutine generation (Section 4.1).

Maps each compression algorithm's compress/decompress routine onto a
short SIMT instruction sequence that executes through the regular GPU
pipelines. The sequences follow the paper's descriptions:

* **BDI decompression** is a masked vector addition: load the compressed
  words, split base and deltas, add in parallel across the 32-lane ALU
  (one pass per 32 words — Section 4.1.2 footnote 1), fix the active
  mask for implicit-zero-base lanes, write the uncompressed line back to
  the L1. A separate subroutine is stored per BDI encoding.
* **BDI compression** tests candidate encodings, using a global
  predicate register to AND-reduce the per-lane "fits" predicates; the
  homogeneous-data observation (Section 4.1.2) lets it test few
  encodings.
* **FPC** has variable-length, serially parsed symbols, which SIMT
  lanes handle poorly: its subroutines walk word groups with
  shift/select/merge steps, making them the longest — this is why
  CABA-FPC trails CABA-BDI in the paper (Section 6.3) despite similar
  compression ratios.
* **C-Pack** decompresses mostly in parallel once the (line-local)
  dictionary entries, hoisted to the line head by the CABA adaptation
  (Section 4.1.3), are loaded.

The instruction *counts* are the modelling contract here; they determine
how many issue slots, ALU cycles and LSU slots each assist warp steals,
from which CABA's overhead relative to dedicated hardware emerges.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.gpu.isa import (
    ASSIST_REG_BASE,
    AssistProgram,
    Instr,
    MemSpace,
    OpKind,
    reg_mask,
)

#: Number of SIMT lanes available to one assist warp.
WARP_LANES = 32

#: Per-thread register demand of each algorithm's subroutines
#: (added to the per-block requirement, Section 3.2.2).
REGISTER_DEMAND = {
    "bdi": 4,
    "fpc": 6,
    "cpack": 7,
    "fvc": 5,
    "bestofall": 7,
}

_R = ASSIST_REG_BASE  # first assist register slot


def _alu(dst: int, src: int, latency: int = 1, tag: str = "alu") -> Instr:
    return Instr(
        OpKind.ALU,
        latency=latency,
        dst_mask=reg_mask(_R + dst),
        src_mask=reg_mask(_R + src),
        tag=tag,
    )


def _move_live_in(tag: str = "move_livein") -> Instr:
    """Copy live-in data (the line address) from a parent register
    (Section 3.4: MOVE instructions copy live-ins at assist start)."""
    return Instr(
        OpKind.ALU,
        latency=1,
        dst_mask=reg_mask(_R + 0),
        src_mask=reg_mask(0),
        tag=tag,
    )


def _l1_load(dst: int, src: int, tag: str = "l1_load") -> Instr:
    return Instr(
        OpKind.LOAD,
        dst_mask=reg_mask(_R + dst),
        src_mask=reg_mask(_R + src),
        space=MemSpace.LOCAL_L1,
        tag=tag,
    )


def _l1_store(src: int, tag: str = "l1_store") -> Instr:
    return Instr(
        OpKind.STORE,
        latency=1,
        src_mask=reg_mask(_R + src),
        space=MemSpace.LOCAL_L1,
        tag=tag,
    )


def _program(name: str, body: Iterable[Instr], demand: int) -> AssistProgram:
    return AssistProgram(body=tuple(body), name=name, register_demand=demand)


# ----------------------------------------------------------------------
# BDI
# ----------------------------------------------------------------------
def bdi_decompress(encoding: str, line_size: int = 128) -> AssistProgram:
    """Decompression subroutine for one BDI encoding."""
    demand = REGISTER_DEMAND["bdi"]
    if encoding == "ZEROS":
        body = [
            _move_live_in(),
            _alu(2, 0, tag="gen_zero"),
            _l1_store(2, tag="store_line"),
        ]
        return _program("bdi_dec_ZEROS", body, demand)
    if encoding == "REPEAT":
        body = [
            _move_live_in(),
            _l1_load(1, 0, tag="load_value"),
            _alu(2, 1, tag="broadcast"),
            _l1_store(2, tag="store_line"),
        ]
        return _program("bdi_dec_REPEAT", body, demand)

    base_bytes = int(encoding[1])  # e.g. "B8D1" -> 8
    n_words = line_size // base_bytes
    passes = math.ceil(n_words / WARP_LANES)
    body: list[Instr] = [
        _move_live_in(),
        _l1_load(1, 0, tag="load_compressed"),
        _alu(3, 1, tag="set_active_mask"),
    ]
    for _ in range(passes):
        body.append(_alu(2, 1, tag="extract_deltas"))
        body.append(_alu(4, 2, latency=4, tag="add_base"))
        body.append(_l1_store(4, tag="store_uncompressed"))
    return _program(f"bdi_dec_{encoding}", body, demand)


def bdi_compress(line_size: int = 128, encodings_tested: int = 2) -> AssistProgram:
    """BDI compression: test encodings, AND-reduce fit predicates, pack.

    ``encodings_tested`` defaults to 2, reflecting the homogeneous-data
    observation that most lines of an application reuse one encoding.
    """
    body: list[Instr] = [
        _move_live_in(),
        _l1_load(1, 0, tag="load_line"),
    ]
    for i in range(encodings_tested):
        body.append(_alu(2, 1, tag=f"deltas_{i}"))
        body.append(_alu(3, 2, tag=f"fits_predicate_{i}"))
        body.append(_alu(4, 3, tag=f"global_predicate_{i}"))
        body.append(_alu(5, 4, tag=f"select_{i}"))
    body.append(_alu(6, 5, tag="pack_metadata"))
    body.append(_alu(7, 6, tag="pack_deltas"))
    body.append(_l1_store(7, tag="store_compressed"))
    return _program("bdi_comp", body, REGISTER_DEMAND["bdi"])


# ----------------------------------------------------------------------
# FPC
# ----------------------------------------------------------------------
def fpc_decompress(line_size: int = 128) -> AssistProgram:
    """FPC decompression: serial variable-length parse over word groups."""
    groups = max(1, line_size // 16)  # 4 words of 4 B per group
    body: list[Instr] = [
        _move_live_in(),
        _l1_load(1, 0, tag="load_compressed"),
    ]
    for g in range(groups):
        body.append(_alu(2, 1, tag=f"shift_prefixes_{g}"))
        body.append(_alu(3, 2, tag=f"select_pattern_{g}"))
        body.append(_alu(4, 3, tag=f"expand_merge_{g}"))
    body.append(_l1_store(4, tag="store_low_half"))
    body.append(_l1_store(4, tag="store_high_half"))
    return _program("fpc_dec", body, REGISTER_DEMAND["fpc"])


def fpc_compress(line_size: int = 128) -> AssistProgram:
    """FPC compression: classify each word group, pack variable symbols."""
    groups = max(1, line_size // 16)
    body: list[Instr] = [
        _move_live_in(),
        _l1_load(1, 0, tag="load_line"),
    ]
    for g in range(groups):
        body.append(_alu(2, 1, tag=f"classify_{g}"))
        body.append(_alu(3, 2, tag=f"encode_{g}"))
        body.append(_alu(4, 3, tag=f"prefix_scan_{g}"))
        body.append(_alu(5, 4, tag=f"pack_{g}"))
    body.append(_alu(6, 5, tag="finalize_sizes"))
    body.append(_alu(7, 6, tag="write_metadata"))
    body.append(_l1_store(7, tag="store_compressed"))
    return _program("fpc_comp", body, REGISTER_DEMAND["fpc"])


# ----------------------------------------------------------------------
# C-Pack
# ----------------------------------------------------------------------
def cpack_decompress(line_size: int = 128) -> AssistProgram:
    """C-Pack decompression: load head-of-line dictionary, then mostly
    parallel per-word pattern expansion."""
    groups = max(1, line_size // 32)  # 8 words per group
    body: list[Instr] = [
        _move_live_in(),
        _l1_load(1, 0, tag="load_compressed"),
        _alu(2, 1, tag="load_dictionary"),
        _alu(3, 2, tag="index_dictionary"),
        _alu(4, 3, tag="decode_prefixes"),
        _alu(5, 4, tag="gather_entries"),
    ]
    for g in range(groups):
        body.append(_alu(6, 5, tag=f"expand_{g}"))
        body.append(_alu(7, 6, tag=f"merge_{g}"))
    body.append(_l1_store(7, tag="store_line"))
    return _program("cpack_dec", body, REGISTER_DEMAND["cpack"])


def cpack_compress(line_size: int = 128) -> AssistProgram:
    """C-Pack compression: dictionary build + per-word match/encode."""
    groups = max(1, line_size // 32)
    body: list[Instr] = [
        _move_live_in(),
        _l1_load(1, 0, tag="load_line"),
        _alu(2, 1, tag="init_dictionary"),
    ]
    for g in range(groups):
        body.append(_alu(3, 2, tag=f"match_{g}"))
        body.append(_alu(4, 3, tag=f"encode_{g}"))
        body.append(_alu(5, 4, tag=f"update_dict_{g}"))
    body.append(_alu(6, 5, tag="pack"))
    body.append(_alu(7, 6, tag="write_metadata"))
    body.append(_l1_store(7, tag="store_compressed"))
    return _program("cpack_comp", body, REGISTER_DEMAND["cpack"])


# ----------------------------------------------------------------------
# FVC
# ----------------------------------------------------------------------
def fvc_decompress(line_size: int = 128) -> AssistProgram:
    """FVC decompression: unpack flags, gather table values, merge."""
    groups = max(1, line_size // 32)  # 8 words per group
    body: list[Instr] = [
        _move_live_in(),
        _l1_load(1, 0, tag="load_compressed"),
        _alu(2, 1, tag="unpack_flags"),
    ]
    for g in range(groups):
        body.append(_alu(3, 2, tag=f"table_gather_{g}"))
        body.append(_alu(4, 3, tag=f"merge_{g}"))
    body.append(_l1_store(4, tag="store_line"))
    return _program("fvc_dec", body, REGISTER_DEMAND["fvc"])


def fvc_compress(line_size: int = 128) -> AssistProgram:
    """FVC compression: per-word table match, flag packing."""
    groups = max(1, line_size // 32)
    body: list[Instr] = [
        _move_live_in(),
        _l1_load(1, 0, tag="load_line"),
    ]
    for g in range(groups):
        body.append(_alu(2, 1, tag=f"table_match_{g}"))
        body.append(_alu(3, 2, tag=f"encode_{g}"))
    body.append(_alu(4, 3, tag="pack_flags"))
    body.append(_l1_store(4, tag="store_compressed"))
    return _program("fvc_comp", body, REGISTER_DEMAND["fvc"])


# ----------------------------------------------------------------------
# Library
# ----------------------------------------------------------------------
#: Built programs shared across library instances. Every run constructs
#: a fresh SubroutineLibrary, but programs are immutable and depend only
#: on (line_size, task, algorithm, encoding) — memoizing at module level
#: removes program construction from the per-run cost entirely.
_PROGRAM_CACHE: dict[tuple[int, str, str, str], AssistProgram] = {}


class SubroutineLibrary:
    """Builds and caches assist programs per (task, algorithm, encoding).

    ``decompression`` dispatches on the encoding the hierarchy reports
    for the arriving line; BestOfAll encodings carry an ``algo:`` prefix
    and use the winning component's subroutine.
    """

    def __init__(self, line_size: int = 128) -> None:
        self.line_size = line_size
        self._cache = _PROGRAM_CACHE

    def register_demand(self, algorithm: str) -> int:
        """Per-thread registers the compiler must provision (Sec. 3.2.2)."""
        try:
            return REGISTER_DEMAND[algorithm]
        except KeyError:
            raise ValueError(f"unknown algorithm {algorithm!r}")

    def decompression(self, algorithm: str, encoding: str) -> AssistProgram:
        if algorithm == "bestofall" and ":" in encoding:
            algorithm, encoding = encoding.split(":", 1)
        key = (self.line_size, "dec", algorithm, encoding)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._build_decompression(algorithm, encoding)
            self._cache[key] = cached
        return cached

    def compression(self, algorithm: str) -> AssistProgram:
        key = (self.line_size, "comp", algorithm, "")
        cached = self._cache.get(key)
        if cached is None:
            cached = self._build_compression(algorithm)
            self._cache[key] = cached
        return cached

    def _build_decompression(self, algorithm: str, encoding: str) -> AssistProgram:
        if algorithm == "bdi":
            return bdi_decompress(encoding, self.line_size)
        if algorithm == "fpc":
            return fpc_decompress(self.line_size)
        if algorithm == "cpack":
            return cpack_decompress(self.line_size)
        if algorithm == "fvc":
            return fvc_decompress(self.line_size)
        raise ValueError(f"no decompression subroutine for {algorithm!r}")

    def _build_compression(self, algorithm: str) -> AssistProgram:
        if algorithm == "bdi":
            return bdi_compress(self.line_size)
        if algorithm == "fpc":
            return fpc_compress(self.line_size)
        if algorithm == "cpack":
            return cpack_compress(self.line_size)
        if algorithm == "fvc":
            return fvc_compress(self.line_size)
        if algorithm == "bestofall":
            # Idealized selection (Section 6.3): pay the cheapest
            # single-algorithm compression subroutine.
            return bdi_compress(self.line_size)
        raise ValueError(f"no compression subroutine for {algorithm!r}")
