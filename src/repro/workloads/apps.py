"""The 27-application workload pool (Section 5) as synthetic profiles.

Each :class:`AppProfile` captures what matters for the paper's results:
the instruction mix (how memory-bound the kernel is and what stalls it),
the access pattern (coalescing, cache locality, DRAM row behaviour), the
static resource demands (registers — Figure 2), and the data-value
mixture (per-algorithm compressibility — Figure 11). The profiles are a
model of the original benchmarks' published characteristics, not their
semantics; see DESIGN.md for the substitution rationale.

Suites: CUDA SDK (BFS, CONS, JPEG, LPS, MUM, RAY, SCP, TRA, SLA, NQU,
STO, lc, pt, mc), Rodinia (hs, nw, bp, NN, sc), Mars (KM, MM, PVC, PVR,
SS), Lonestar (bfs, bh, mst, sp, sssp, dmr).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class OpSpec:
    """One step of a kernel's loop body.

    kind: ``alu`` | ``heavy_alu`` | ``sfu`` | ``load`` | ``store`` |
        ``shared_load`` | ``sync``.
    pattern: for memory ops — ``stream`` (coalesced, touched once),
        ``stride`` (two lines per access), ``random`` (divergent), or
        ``reuse`` (random within a small hot set).
    footprint: for ``random``/``reuse`` — region size as a multiple of
        the machine's L2 capacity (None for streamed regions, which are
        sized to the total work).
    fanout: unique lines per warp access (memory divergence).
    phase: temporal locality of stream/stride accesses — the same line
        is re-touched this many consecutive iterations before the
        stream advances (re-touches hit in the L1/L2).
    """

    kind: str
    count: int = 1
    pattern: str = "stream"
    region: int = 0
    footprint: float | None = None
    fanout: int = 1
    phase: int = 1


def _ops(*specs: OpSpec) -> tuple[OpSpec, ...]:
    return specs


@dataclass(frozen=True)
class AppProfile:
    """Synthetic stand-in for one benchmark application."""

    name: str
    suite: str
    #: ``memory`` or ``compute`` — the Figure 1 categorization.
    category: str
    #: Whether the paper's profiling enables CABA compression for it
    #: (bandwidth-sensitive with >= 10% compressible bandwidth).
    compressible: bool
    #: Data-pattern mixture (see repro.workloads.data_patterns).
    data: Mapping[str, float]
    body: tuple[OpSpec, ...]
    iterations: int
    warps_per_block: int
    regs_per_thread: int
    smem_per_block: int = 0
    #: Grid size in units of full-machine waves of blocks.
    waves: float = 2.0
    #: Deterministic data seed.
    seed: int = 0


def _mem_body(loads: int, alus: int, pattern: str = "stream",
              footprint: float | None = None, fanout: int = 1,
              stores: int = 0, store_pattern: str = "stream") -> tuple:
    """A typical memory-bound loop: loads up front, dependent ALU work,
    optionally stores."""
    specs = [
        OpSpec("load", count=loads, pattern=pattern, footprint=footprint,
               fanout=fanout)
    ]
    specs.append(OpSpec("alu", count=alus))
    if stores:
        specs.append(OpSpec("store", count=stores, pattern=store_pattern,
                            region=7, footprint=footprint))
    return _ops(*specs)


def _compute_body(alus: int, heavy: int, sfus: int, loads: int = 1) -> tuple:
    specs = []
    if loads:
        specs.append(OpSpec("load", count=loads, pattern="reuse",
                            footprint=0.4))
    specs.append(OpSpec("alu", count=alus))
    if heavy:
        specs.append(OpSpec("heavy_alu", count=heavy))
    if sfus:
        specs.append(OpSpec("sfu", count=sfus))
    return _ops(*specs)


APPLICATIONS: dict[str, AppProfile] = {}


def _register(app: AppProfile) -> None:
    if app.name in APPLICATIONS:
        raise ValueError(f"duplicate application {app.name!r}")
    APPLICATIONS[app.name] = app


# ----------------------------------------------------------------------
# Memory-bound applications (Figure 1, left group)
# ----------------------------------------------------------------------
_register(AppProfile(
    name="BFS", suite="cuda", category="memory", compressible=True,
    data={"small_int": 0.5, "pointer": 0.25, "zeros": 0.15, "random": 0.1},
    # Graph frontier expansion: divergent accesses over an L2-resident
    # frontier — the paper notes BFS is interconnect-bandwidth-limited.
    body=_mem_body(loads=3, alus=3, pattern="random", footprint=0.6, fanout=2),
    iterations=24, warps_per_block=6, regs_per_thread=14, seed=11,
))
_register(AppProfile(
    name="CONS", suite="cuda", category="memory", compressible=True,
    data={"float32": 0.5, "narrow4": 0.3, "zeros": 0.1, "random": 0.1},
    body=_ops(
        OpSpec("load", count=1, pattern="stream", phase=3),
        OpSpec("load", count=1, pattern="reuse", region=5, footprint=0.3),
        OpSpec("alu", count=6),
        OpSpec("store", count=1, region=7, phase=3),
    ),
    iterations=26, warps_per_block=8, regs_per_thread=16, seed=12,
))
_register(AppProfile(
    name="JPEG", suite="cuda", category="memory", compressible=True,
    data={"small_int": 0.45, "text": 0.3, "dict_words": 0.15, "random": 0.1},
    body=_ops(
        OpSpec("load", count=1, pattern="stream", phase=3),
        OpSpec("load", count=1, pattern="reuse", region=5, footprint=0.25),
        OpSpec("alu", count=8),
        OpSpec("store", count=1, region=7, phase=3),
    ),
    iterations=24, warps_per_block=8, regs_per_thread=21, seed=13,
))
_register(AppProfile(
    name="LPS", suite="cuda", category="memory", compressible=True,
    data={"small_int": 0.4, "text": 0.3, "float32": 0.2, "random": 0.1},
    body=_ops(
        OpSpec("load", count=2, pattern="stride", phase=2),
        OpSpec("load", count=1, pattern="reuse", region=5, footprint=0.3),
        OpSpec("alu", count=7),
        OpSpec("store", count=1, region=7, phase=2),
    ),
    iterations=24, warps_per_block=8, regs_per_thread=17, seed=14,
))
_register(AppProfile(
    name="MUM", suite="cuda", category="memory", compressible=True,
    data={"text": 0.45, "dict_words": 0.3, "small_int": 0.1, "random": 0.15},
    body=_mem_body(loads=3, alus=4, pattern="random", footprint=3.0, fanout=2),
    iterations=22, warps_per_block=6, regs_per_thread=20, seed=15,
))
_register(AppProfile(
    name="RAY", suite="cuda", category="memory", compressible=True,
    data={"float32": 0.6, "narrow4": 0.2, "zeros": 0.05, "random": 0.15},
    # High L2 reuse: rays traverse a scene structure resident in the L2.
    body=_mem_body(loads=2, alus=10, pattern="reuse", footprint=0.7),
    iterations=26, warps_per_block=6, regs_per_thread=26, seed=16,
))
_register(AppProfile(
    name="SCP", suite="cuda", category="memory", compressible=False,
    data={"random": 0.95, "zeros": 0.05},
    body=_mem_body(loads=3, alus=4, stores=1),
    iterations=24, warps_per_block=8, regs_per_thread=14, seed=17,
))
_register(AppProfile(
    name="MM", suite="mars", category="memory", compressible=True,
    data={"narrow8": 0.55, "narrow4": 0.28, "zeros": 0.12, "random": 0.05},
    body=_mem_body(loads=4, alus=6, stores=1),
    iterations=26, warps_per_block=8, regs_per_thread=18, seed=18,
))
_register(AppProfile(
    name="PVC", suite="mars", category="memory", compressible=True,
    data={"narrow8": 0.6, "text": 0.2, "zeros": 0.15, "random": 0.05},
    body=_mem_body(loads=4, alus=3, stores=1),
    iterations=28, warps_per_block=8, regs_per_thread=15, seed=19,
))
_register(AppProfile(
    name="PVR", suite="mars", category="memory", compressible=True,
    data={"narrow8": 0.55, "text": 0.17, "pointer": 0.12, "zeros": 0.11,
          "random": 0.05},
    body=_mem_body(loads=4, alus=3, stores=1),
    iterations=28, warps_per_block=8, regs_per_thread=16, seed=20,
))
_register(AppProfile(
    name="SS", suite="mars", category="memory", compressible=True,
    data={"text": 0.5, "small_int": 0.2, "dict_words": 0.15, "random": 0.15},
    body=_ops(
        OpSpec("load", count=2, pattern="stream", phase=4),
        OpSpec("load", count=1, pattern="reuse", region=5, footprint=0.3),
        OpSpec("alu", count=6),
        OpSpec("store", count=1, region=7, phase=4),
    ),
    iterations=26, warps_per_block=8, regs_per_thread=16, seed=21,
))
_register(AppProfile(
    name="sc", suite="rodinia", category="memory", compressible=False,
    data={"random": 0.9, "float32": 0.1},
    body=_mem_body(loads=3, alus=5, stores=1),
    iterations=22, warps_per_block=8, regs_per_thread=20, seed=22,
))
_register(AppProfile(
    name="bfs", suite="lonestar", category="memory", compressible=True,
    data={"small_int": 0.45, "pointer": 0.3, "zeros": 0.15, "random": 0.1},
    body=_mem_body(loads=3, alus=3, pattern="random", footprint=0.5, fanout=2),
    iterations=24, warps_per_block=6, regs_per_thread=15, seed=23,
))
_register(AppProfile(
    name="bh", suite="lonestar", category="memory", compressible=True,
    data={"float32": 0.4, "pointer": 0.35, "small_int": 0.1, "random": 0.15},
    body=_mem_body(loads=2, alus=8, pattern="random", footprint=2.0, fanout=2),
    iterations=22, warps_per_block=6, regs_per_thread=24, seed=24,
))
_register(AppProfile(
    name="mst", suite="lonestar", category="memory", compressible=True,
    data={"pointer": 0.4, "small_int": 0.3, "zeros": 0.2, "random": 0.1},
    body=_mem_body(loads=4, alus=3, pattern="random", footprint=2.5, fanout=2),
    iterations=24, warps_per_block=6, regs_per_thread=16, seed=25,
))
_register(AppProfile(
    name="sp", suite="lonestar", category="memory", compressible=True,
    data={"small_int": 0.5, "zeros": 0.25, "pointer": 0.15, "random": 0.1},
    body=_ops(
        OpSpec("load", count=2, pattern="stride", phase=2),
        OpSpec("load", count=1, pattern="reuse", region=5, footprint=0.4),
        OpSpec("alu", count=5),
        OpSpec("store", count=1, region=7, phase=2),
    ),
    iterations=24, warps_per_block=8, regs_per_thread=15, seed=26,
))
_register(AppProfile(
    name="sssp", suite="lonestar", category="memory", compressible=True,
    data={"small_int": 0.5, "pointer": 0.25, "zeros": 0.12, "random": 0.13},
    body=_mem_body(loads=3, alus=4, pattern="random", footprint=2.0, fanout=2),
    iterations=24, warps_per_block=6, regs_per_thread=16, seed=27,
))

# ----------------------------------------------------------------------
# Applications in the compression study but not Figure 1's 27
# ----------------------------------------------------------------------
_register(AppProfile(
    name="SLA", suite="cuda", category="compute", compressible=True,
    data={"narrow8": 0.4, "float32": 0.3, "zeros": 0.1, "random": 0.2},
    body=_ops(
        OpSpec("load", count=1, pattern="stream", phase=3),
        OpSpec("load", count=1, pattern="reuse", region=5, footprint=0.35),
        OpSpec("alu", count=8),
        OpSpec("store", count=1, region=7, phase=3),
    ),
    iterations=26, warps_per_block=8, regs_per_thread=18, seed=28,
))
_register(AppProfile(
    name="TRA", suite="cuda", category="memory", compressible=True,
    data={"narrow4": 0.5, "small_int": 0.3, "zeros": 0.1, "random": 0.1},
    # Transpose: strided, L2-sensitive (benefits from L2 compression,
    # Fig. 13).
    body=_mem_body(loads=3, alus=3, pattern="stride", stores=1,
                   store_pattern="stride"),
    iterations=24, warps_per_block=8, regs_per_thread=14, seed=29,
))
_register(AppProfile(
    name="nw", suite="rodinia", category="memory", compressible=True,
    data={"small_int": 0.55, "text": 0.2, "dict_words": 0.15, "random": 0.1},
    body=_ops(
        OpSpec("load", count=2, pattern="stride", phase=2),
        OpSpec("load", count=1, pattern="reuse", region=5, footprint=0.3),
        OpSpec("alu", count=5),
        OpSpec("sync"),
        OpSpec("store", count=1, region=7, phase=2),
    ),
    iterations=22, warps_per_block=4, regs_per_thread=17, seed=30,
))
_register(AppProfile(
    name="KM", suite="mars", category="memory", compressible=True,
    data={"float32": 0.4, "narrow4": 0.25, "dict_words": 0.2, "random": 0.15},
    body=_ops(
        OpSpec("load", count=1, pattern="stream", phase=4),
        OpSpec("load", count=1, pattern="reuse", region=5, footprint=0.5),
        OpSpec("alu", count=9),
        OpSpec("store", count=1, region=7, phase=4),
    ),
    iterations=26, warps_per_block=8, regs_per_thread=17, seed=31,
))

# ----------------------------------------------------------------------
# Compute-bound applications (Figure 1, right group)
# ----------------------------------------------------------------------
_register(AppProfile(
    name="bp", suite="rodinia", category="compute", compressible=False,
    data={"float32": 0.6, "narrow4": 0.2, "random": 0.2},
    body=_compute_body(alus=10, heavy=2, sfus=1),
    iterations=30, warps_per_block=8, regs_per_thread=18, seed=40,
))
_register(AppProfile(
    name="hs", suite="rodinia", category="compute", compressible=True,
    data={"float32": 0.55, "narrow4": 0.25, "zeros": 0.05, "random": 0.15},
    body=_ops(
        OpSpec("load", count=2, pattern="stream", phase=2),
        OpSpec("shared_load", count=2),
        OpSpec("alu", count=8),
        OpSpec("heavy_alu", count=2),
        OpSpec("store", count=1, region=7),
    ),
    iterations=26, warps_per_block=8, regs_per_thread=22,
    smem_per_block=4096, seed=41,
))
_register(AppProfile(
    name="dmr", suite="lonestar", category="compute", compressible=False,
    data={"float32": 0.5, "pointer": 0.3, "random": 0.2},
    # Delaunay mesh refinement: long SFU chains cause the data-dependence
    # stalls the paper calls out for dmr.
    body=_compute_body(alus=6, heavy=2, sfus=4),
    iterations=26, warps_per_block=6, regs_per_thread=30, seed=42,
))
_register(AppProfile(
    name="NQU", suite="cuda", category="compute", compressible=False,
    data={"small_int": 0.6, "zeros": 0.2, "random": 0.2},
    body=_compute_body(alus=14, heavy=2, sfus=0, loads=1),
    iterations=30, warps_per_block=4, regs_per_thread=12, seed=43,
))
_register(AppProfile(
    name="pt", suite="lonestar", category="compute", compressible=False,
    data={"float32": 0.5, "narrow4": 0.3, "random": 0.2},
    body=_compute_body(alus=10, heavy=3, sfus=1),
    iterations=28, warps_per_block=8, regs_per_thread=24, seed=44,
))
_register(AppProfile(
    name="lc", suite="cuda", category="compute", compressible=False,
    data={"float32": 0.5, "small_int": 0.3, "random": 0.2},
    body=_compute_body(alus=12, heavy=2, sfus=1),
    iterations=28, warps_per_block=8, regs_per_thread=20, seed=45,
))
_register(AppProfile(
    name="STO", suite="cuda", category="compute", compressible=False,
    data={"text": 0.5, "dict_words": 0.3, "random": 0.2},
    body=_compute_body(alus=12, heavy=3, sfus=0),
    iterations=28, warps_per_block=8, regs_per_thread=16, seed=46,
))
_register(AppProfile(
    name="NN", suite="rodinia", category="compute", compressible=False,
    data={"float32": 0.6, "narrow4": 0.2, "random": 0.2},
    body=_compute_body(alus=9, heavy=2, sfus=2),
    iterations=28, warps_per_block=8, regs_per_thread=22, seed=47,
))
_register(AppProfile(
    name="mc", suite="cuda", category="compute", compressible=False,
    data={"float32": 0.5, "random": 0.5},
    body=_compute_body(alus=8, heavy=2, sfus=3),
    iterations=28, warps_per_block=8, regs_per_thread=20, seed=48,
))

# ----------------------------------------------------------------------
# DL / HPC scenario-diversity profiles (beyond the paper's pool). Their
# value mixtures use the FP32 generators so FPC/BDI/C-Pack diverge the
# way Buddy Compression reports for activations, weights and PDE fields.
# ----------------------------------------------------------------------
_register(AppProfile(
    name="ATTN", suite="dl", category="memory", compressible=True,
    data={"fp32_nearzero": 0.45, "fp32_weights": 0.3, "zeros": 0.1,
          "float32": 0.1, "random": 0.05},
    body=_ops(
        # Q/K tiles streamed in with tile-level re-touch, staged through
        # shared memory for the MAC-heavy inner product.
        OpSpec("load", count=2, pattern="stream", phase=4),
        OpSpec("shared_load", count=2),
        OpSpec("alu", count=8),
        OpSpec("heavy_alu", count=2),
        # softmax: exp on the SFU, then the V rows from a hot set.
        OpSpec("sfu", count=1),
        OpSpec("load", count=1, pattern="reuse", region=5, footprint=0.5),
        OpSpec("store", count=1, region=7, phase=4),
    ),
    iterations=24, warps_per_block=8, regs_per_thread=32,
    smem_per_block=4096, seed=60,
))
_register(AppProfile(
    name="ST3D", suite="hpc", category="memory", compressible=True,
    data={"fp32_smooth": 0.65, "fp32_weights": 0.15, "zeros": 0.05,
          "random": 0.15},
    body=_ops(
        # Neighbour planes of the 3-D grid: strided loads that re-touch
        # the shared face lines, a short update, one streamed store.
        OpSpec("load", count=3, pattern="stride", phase=2),
        OpSpec("alu", count=6),
        OpSpec("store", count=1, region=7, phase=2),
    ),
    iterations=26, warps_per_block=8, regs_per_thread=20, seed=61,
))

# ----------------------------------------------------------------------
# Named subsets used by the harness
# ----------------------------------------------------------------------
#: Figure 1's 27 applications (order follows the figure: memory-bound
#: group first, then compute-bound).
FIGURE1_APPS: tuple[str, ...] = (
    "BFS", "CONS", "JPEG", "LPS", "MUM", "RAY", "SCP", "MM", "PVC",
    "PVR", "SS", "sc", "bfs", "bh", "mst", "sp", "sssp",
    "bp", "hs", "dmr", "NQU", "SLA", "pt", "lc", "STO", "NN", "mc",
)

#: The 20 applications of the compression evaluation (Section 5).
COMPRESSION_APPS: tuple[str, ...] = (
    "BFS", "CONS", "JPEG", "LPS", "MUM", "RAY", "SLA", "TRA",
    "hs", "nw",
    "KM", "MM", "PVC", "PVR", "SS",
    "bfs", "bh", "mst", "sp", "sssp",
)

#: Scenario-diversity profiles beyond the paper's pool (not part of the
#: Figure 1 / compression matrices, which stay pinned to the paper).
DLHPC_APPS: tuple[str, ...] = ("ATTN", "ST3D")


def get_app(name: str) -> AppProfile:
    """Look up an application profile by name."""
    try:
        return APPLICATIONS[name]
    except KeyError:
        known = ", ".join(sorted(APPLICATIONS))
        raise KeyError(f"unknown application {name!r} (known: {known})")
