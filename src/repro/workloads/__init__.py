"""Synthetic workload pool: application profiles, traces, data patterns."""

from repro.workloads.apps import (
    APPLICATIONS,
    COMPRESSION_APPS,
    DLHPC_APPS,
    FIGURE1_APPS,
    AppProfile,
    OpSpec,
    get_app,
)
from repro.workloads.data_patterns import PATTERNS, make_line_generator
from repro.workloads.tracegen import TraceScale, build_kernel, build_program

__all__ = [
    "APPLICATIONS",
    "AppProfile",
    "COMPRESSION_APPS",
    "DLHPC_APPS",
    "FIGURE1_APPS",
    "OpSpec",
    "PATTERNS",
    "TraceScale",
    "build_kernel",
    "build_program",
    "get_app",
    "make_line_generator",
]
