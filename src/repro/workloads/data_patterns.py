"""Synthetic data generators with controlled compressibility.

The paper's applications compress differently under BDI, FPC and C-Pack
because their in-memory value patterns differ (Section 6.3: LPS, JPEG,
MUM, nw favour FPC/C-Pack; MM, PVC, PVR favour BDI). Each workload here
declares a *mixture* of the named patterns below; every global-memory
line deterministically draws one pattern (hashed from its address), and
the compression algorithms then run on the real bytes — compression
ratios are measured, never assumed.

Patterns and the algorithms they favour:

==============  ==========================================================
``zeros``       all-zero line — every algorithm's best case
``narrow8``     8-byte values, one base + tiny deltas — BDI (B8D1)
``narrow4``     4-byte values, one base + small deltas — BDI (B4D1/B4D2)
``small_int``   small signed 32-bit integers — FPC narrow patterns, BDI
``pointer``     8-byte pointers sharing high bytes — BDI wide deltas
``dict_words``  few distinct 32-bit words — C-Pack dictionary hits
``text``        byte-granular runs — FPC repeated bytes / C-Pack partial
``float32``     shared exponents, noisy mantissas — C-Pack mmxx, BDI B4D2
``random``      incompressible
==============  ==========================================================

DL/HPC value generators (used by the ``dl``/``hpc`` suites, after
Buddy Compression's observation that activations and HPC fields carry
most of the exploitable redundancy in FP32 data):

================  ========================================================
``fp32_nearzero``  ReLU-style activations: mostly exact zeros plus sparse
                   small-magnitude floats — FPC zero runs, C-Pack zzzz
``fp32_weights``   quantized weight tensors: few distinct values per tile
                   in a narrow exponent band — C-Pack dictionary hits
``fp32_smooth``    smooth stencil fields: one exponent, slowly drifting
                   mantissa across the line — BDI B4D1/B4D2
================  ========================================================
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

_M64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """A splitmix64-style hash used for deterministic per-line draws."""
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


class _Rng:
    """Tiny deterministic generator seeded from (seed, line)."""

    __slots__ = ("state",)

    def __init__(self, seed: int, line: int) -> None:
        self.state = _mix((seed << 32) ^ (line & 0xFFFFFFFF)) or 1

    def next64(self) -> int:
        self.state = _mix(self.state)
        return self.state

    def below(self, n: int) -> int:
        return self.next64() % n


# ----------------------------------------------------------------------
# Pattern builders: (rng, line_size) -> bytes
# ----------------------------------------------------------------------
def _zeros(rng: _Rng, line_size: int) -> bytes:
    return bytes(line_size)


def _narrow8(rng: _Rng, line_size: int) -> bytes:
    base = rng.next64() & 0xFFFFFFFFFF00
    out = bytearray()
    for _ in range(line_size // 8):
        value = (base + rng.below(100)) & _M64
        out += value.to_bytes(8, "little")
    return bytes(out)


def _narrow4(rng: _Rng, line_size: int) -> bytes:
    base = rng.next64() & 0xFFFFFF00
    out = bytearray()
    for _ in range(line_size // 4):
        out += ((base + rng.below(64)) & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(out)


def _small_int(rng: _Rng, line_size: int) -> bytes:
    out = bytearray()
    for _ in range(line_size // 4):
        value = rng.below(256) - 128
        out += (value & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(out)


def _pointer(rng: _Rng, line_size: int) -> bytes:
    base = (rng.next64() & 0x7FFF_FF00_0000) | 0x7F00_0000_0000
    out = bytearray()
    for _ in range(line_size // 8):
        value = (base + rng.below(1 << 22) * 8) & _M64
        out += value.to_bytes(8, "little")
    return bytes(out)


def _dict_words(rng: _Rng, line_size: int) -> bytes:
    vocabulary = [rng.next64() & 0xFFFFFFFF for _ in range(4)]
    out = bytearray()
    for _ in range(line_size // 4):
        out += vocabulary[rng.below(4)].to_bytes(4, "little")
    return bytes(out)


def _text(rng: _Rng, line_size: int) -> bytes:
    out = bytearray()
    while len(out) < line_size:
        run = 4 * (1 + rng.below(4))
        byte = 0x20 + rng.below(96)
        out += bytes([byte]) * run
    return bytes(out[:line_size])


def _float32(rng: _Rng, line_size: int) -> bytes:
    exponent = (0x3F00 + rng.below(8) * 0x80) << 16
    out = bytearray()
    for _ in range(line_size // 4):
        out += ((exponent | rng.below(1 << 16)) & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(out)


def _fp32_nearzero(rng: _Rng, line_size: int) -> bytes:
    """ReLU activations: ~60% exact zeros, the rest small positive floats.

    Non-zero words share a narrow sub-1.0 exponent band (2^-9..2^-2) so
    a line mixes long zero runs with clustered small magnitudes — the
    value profile FPC's zero-run and C-Pack's zzzz patterns exploit.
    """
    out = bytearray()
    for _ in range(line_size // 4):
        if rng.below(100) < 60:
            out += b"\x00\x00\x00\x00"
        else:
            exponent = 118 + rng.below(8)  # 2^-9 .. 2^-2
            mantissa = rng.below(1 << 23)
            out += ((exponent << 23) | mantissa).to_bytes(4, "little")
    return bytes(out)


def _fp32_weights(rng: _Rng, line_size: int) -> bytes:
    """Quantized trained-weight tensors: a small per-line codebook.

    Post-training quantization leaves each tile of weights drawn from a
    handful of distinct FP32 values inside one low-magnitude exponent
    band (|w| roughly 0.004..0.25, random signs, low mantissa bits
    zeroed) — exactly the repeated-word profile C-Pack's dictionary
    exploits.
    """
    band = 119 + rng.below(3)  # per-line exponent band, 2^-8 .. 2^-6
    vocabulary = []
    for _ in range(8):
        sign = rng.below(2) << 31
        exponent = band + rng.below(4)
        mantissa = rng.below(1 << 23) & ~0xFFF
        vocabulary.append(
            (sign | (exponent << 23) | mantissa) & 0xFFFFFFFF
        )
    out = bytearray()
    for _ in range(line_size // 4):
        out += vocabulary[rng.below(8)].to_bytes(4, "little")
    return bytes(out)


def _fp32_smooth(rng: _Rng, line_size: int) -> bytes:
    """Smooth stencil fields: one exponent, mantissa drifting slowly.

    Adjacent grid points of a relaxed PDE field differ by tiny amounts:
    every word keeps the line's exponent while the mantissa takes a
    small signed step, so 4-byte words share their high bytes — BDI's
    B4D1/B4D2 sweet spot.
    """
    exponent = (125 + rng.below(4)) << 23  # field magnitude 0.25 .. 4
    mantissa = rng.below(1 << 23)
    out = bytearray()
    for _ in range(line_size // 4):
        step = rng.below(1 << 9) - (1 << 8)
        mantissa = (mantissa + step) & 0x3FFFFF  # keep clear of the exponent
        out += ((exponent | mantissa) & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(out)


def _random(rng: _Rng, line_size: int) -> bytes:
    out = bytearray()
    for _ in range(line_size // 8):
        out += rng.next64().to_bytes(8, "little")
    return bytes(out)


PATTERNS: dict[str, Callable[[_Rng, int], bytes]] = {
    "zeros": _zeros,
    "narrow8": _narrow8,
    "narrow4": _narrow4,
    "small_int": _small_int,
    "pointer": _pointer,
    "dict_words": _dict_words,
    "text": _text,
    "float32": _float32,
    "fp32_nearzero": _fp32_nearzero,
    "fp32_weights": _fp32_weights,
    "fp32_smooth": _fp32_smooth,
    "random": _random,
}


def make_line_generator(
    mixture: Mapping[str, float],
    line_size: int = 128,
    seed: int = 1,
) -> Callable[[int], bytes]:
    """Build a deterministic per-line byte generator from a pattern mixture.

    Args:
        mixture: Pattern name -> weight (weights normalize automatically).
        line_size: Bytes per line.
        seed: Workload seed; distinct workloads get distinct data.

    Returns:
        A function mapping a line address to that line's bytes. The same
        address always yields the same bytes.
    """
    if not mixture:
        raise ValueError("mixture must name at least one pattern")
    unknown = set(mixture) - set(PATTERNS)
    if unknown:
        raise ValueError(f"unknown data patterns: {sorted(unknown)}")
    total = float(sum(mixture.values()))
    if total <= 0 or any(w < 0 for w in mixture.values()):
        raise ValueError("pattern weights must be non-negative, sum > 0")

    names = sorted(mixture)
    cumulative: list[tuple[float, str]] = []
    acc = 0.0
    for name in names:
        acc += mixture[name] / total
        cumulative.append((acc, name))

    def line_bytes(line: int) -> bytes:
        draw = (_mix((seed << 20) ^ line) % (1 << 24)) / float(1 << 24)
        for bound, name in cumulative:
            if draw <= bound or name == names[-1]:
                chosen = name
                break
        # A stable (non-randomized) pattern-name hash keeps generated data
        # identical across processes.
        name_hash = sum(ord(c) * 31 ** k for k, c in enumerate(chosen)) % 997
        rng = _Rng(seed * 1000003 + name_hash, line)
        return PATTERNS[chosen](rng, line_size)

    return line_bytes
