"""Synthetic data generators with controlled compressibility.

The paper's applications compress differently under BDI, FPC and C-Pack
because their in-memory value patterns differ (Section 6.3: LPS, JPEG,
MUM, nw favour FPC/C-Pack; MM, PVC, PVR favour BDI). Each workload here
declares a *mixture* of the named patterns below; every global-memory
line deterministically draws one pattern (hashed from its address), and
the compression algorithms then run on the real bytes — compression
ratios are measured, never assumed.

Patterns and the algorithms they favour:

==============  ==========================================================
``zeros``       all-zero line — every algorithm's best case
``narrow8``     8-byte values, one base + tiny deltas — BDI (B8D1)
``narrow4``     4-byte values, one base + small deltas — BDI (B4D1/B4D2)
``small_int``   small signed 32-bit integers — FPC narrow patterns, BDI
``pointer``     8-byte pointers sharing high bytes — BDI wide deltas
``dict_words``  few distinct 32-bit words — C-Pack dictionary hits
``text``        byte-granular runs — FPC repeated bytes / C-Pack partial
``float32``     shared exponents, noisy mantissas — C-Pack mmxx, BDI B4D2
``random``      incompressible
==============  ==========================================================
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

_M64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """A splitmix64-style hash used for deterministic per-line draws."""
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


class _Rng:
    """Tiny deterministic generator seeded from (seed, line)."""

    __slots__ = ("state",)

    def __init__(self, seed: int, line: int) -> None:
        self.state = _mix((seed << 32) ^ (line & 0xFFFFFFFF)) or 1

    def next64(self) -> int:
        self.state = _mix(self.state)
        return self.state

    def below(self, n: int) -> int:
        return self.next64() % n


# ----------------------------------------------------------------------
# Pattern builders: (rng, line_size) -> bytes
# ----------------------------------------------------------------------
def _zeros(rng: _Rng, line_size: int) -> bytes:
    return bytes(line_size)


def _narrow8(rng: _Rng, line_size: int) -> bytes:
    base = rng.next64() & 0xFFFFFFFFFF00
    out = bytearray()
    for _ in range(line_size // 8):
        value = (base + rng.below(100)) & _M64
        out += value.to_bytes(8, "little")
    return bytes(out)


def _narrow4(rng: _Rng, line_size: int) -> bytes:
    base = rng.next64() & 0xFFFFFF00
    out = bytearray()
    for _ in range(line_size // 4):
        out += ((base + rng.below(64)) & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(out)


def _small_int(rng: _Rng, line_size: int) -> bytes:
    out = bytearray()
    for _ in range(line_size // 4):
        value = rng.below(256) - 128
        out += (value & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(out)


def _pointer(rng: _Rng, line_size: int) -> bytes:
    base = (rng.next64() & 0x7FFF_FF00_0000) | 0x7F00_0000_0000
    out = bytearray()
    for _ in range(line_size // 8):
        value = (base + rng.below(1 << 22) * 8) & _M64
        out += value.to_bytes(8, "little")
    return bytes(out)


def _dict_words(rng: _Rng, line_size: int) -> bytes:
    vocabulary = [rng.next64() & 0xFFFFFFFF for _ in range(4)]
    out = bytearray()
    for _ in range(line_size // 4):
        out += vocabulary[rng.below(4)].to_bytes(4, "little")
    return bytes(out)


def _text(rng: _Rng, line_size: int) -> bytes:
    out = bytearray()
    while len(out) < line_size:
        run = 4 * (1 + rng.below(4))
        byte = 0x20 + rng.below(96)
        out += bytes([byte]) * run
    return bytes(out[:line_size])


def _float32(rng: _Rng, line_size: int) -> bytes:
    exponent = (0x3F00 + rng.below(8) * 0x80) << 16
    out = bytearray()
    for _ in range(line_size // 4):
        out += ((exponent | rng.below(1 << 16)) & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(out)


def _random(rng: _Rng, line_size: int) -> bytes:
    out = bytearray()
    for _ in range(line_size // 8):
        out += rng.next64().to_bytes(8, "little")
    return bytes(out)


PATTERNS: dict[str, Callable[[_Rng, int], bytes]] = {
    "zeros": _zeros,
    "narrow8": _narrow8,
    "narrow4": _narrow4,
    "small_int": _small_int,
    "pointer": _pointer,
    "dict_words": _dict_words,
    "text": _text,
    "float32": _float32,
    "random": _random,
}


def make_line_generator(
    mixture: Mapping[str, float],
    line_size: int = 128,
    seed: int = 1,
) -> Callable[[int], bytes]:
    """Build a deterministic per-line byte generator from a pattern mixture.

    Args:
        mixture: Pattern name -> weight (weights normalize automatically).
        line_size: Bytes per line.
        seed: Workload seed; distinct workloads get distinct data.

    Returns:
        A function mapping a line address to that line's bytes. The same
        address always yields the same bytes.
    """
    if not mixture:
        raise ValueError("mixture must name at least one pattern")
    unknown = set(mixture) - set(PATTERNS)
    if unknown:
        raise ValueError(f"unknown data patterns: {sorted(unknown)}")
    total = float(sum(mixture.values()))
    if total <= 0 or any(w < 0 for w in mixture.values()):
        raise ValueError("pattern weights must be non-negative, sum > 0")

    names = sorted(mixture)
    cumulative: list[tuple[float, str]] = []
    acc = 0.0
    for name in names:
        acc += mixture[name] / total
        cumulative.append((acc, name))

    def line_bytes(line: int) -> bytes:
        draw = (_mix((seed << 20) ^ line) % (1 << 24)) / float(1 << 24)
        for bound, name in cumulative:
            if draw <= bound or name == names[-1]:
                chosen = name
                break
        # A stable (non-randomized) pattern-name hash keeps generated data
        # identical across processes.
        name_hash = sum(ord(c) * 31 ** k for k, c in enumerate(chosen)) % 997
        rng = _Rng(seed * 1000003 + name_hash, line)
        return PATTERNS[chosen](rng, line_size)

    return line_bytes
