"""Build executable kernels (programs + address streams) from profiles.

Converts an :class:`~repro.workloads.apps.AppProfile` into a
:class:`~repro.gpu.kernel.Kernel` for a given machine: the loop body
becomes a register-allocated instruction sequence and every memory op
gets a deterministic address generator reflecting the profile's access
pattern. Streamed regions are sized to the total work (each line touched
once); random/reuse regions are sized relative to the machine's L2 so
cache behaviour scales with the configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.config import GPUConfig
from repro.gpu.isa import Instr, MemSpace, OpKind, Program, reg_mask, sync
from repro.gpu.kernel import Kernel
from repro.workloads.apps import AppProfile, OpSpec

#: Line-address distance between distinct data regions (keeps regions in
#: disjoint DRAM rows without overlapping for any realistic footprint).
#: A prime stride avoids pathological set aliasing across regions in the
#: caches and the MD cache — real allocators do not hand out buffers at
#: identical multi-MB power-of-two offsets either.
REGION_STRIDE = 4_194_301

#: Register slots rotated across the loads of a loop body; the rotation
#: bounds per-warp MLP the way a real register allocation does.
LOAD_REGS = (3, 4, 5, 6)

_M64 = (1 << 64) - 1


def _mix(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


@dataclass(frozen=True)
class TraceScale:
    """Workload scaling knobs.

    ``work`` scales per-warp iterations; ``waves`` scales the grid.
    The defaults run each profile as authored.
    """

    work: float = 1.0
    waves: float | None = None


# ----------------------------------------------------------------------
# Address-generator factories
# ----------------------------------------------------------------------
def _stream_fn(base: int, n: int, total_warps: int, fanout: int,
               phase: int = 1):
    if fanout == 1:
        def fn(w: int, i: int):
            return ((base + ((i // phase) * total_warps + w) % n),)
        return fn

    def fn(w: int, i: int):
        first = ((i // phase) * total_warps + w) * fanout
        return tuple(base + (first + j) % n for j in range(fanout))
    return fn


def _stride_fn(base: int, n: int, total_warps: int, fanout: int,
               phase: int = 1):
    gap = max(1, n // 2)

    def fn(w: int, i: int):
        x = ((i // phase) * total_warps + w) % n
        return tuple(base + (x + j * gap) % n for j in range(max(2, fanout)))
    return fn


def _random_fn(base: int, n: int, salt: int, fanout: int):
    def fn(w: int, i: int):
        h = _mix((w << 20) ^ (i * 0x85EBCA6B) ^ salt)
        return tuple(
            base + ((h >> (13 * j)) % n) for j in range(fanout)
        )
    return fn


def _reuse_fn(base: int, n: int, salt: int, fanout: int):
    # Random accesses confined to a hot set -> high cache hit rates.
    def fn(w: int, i: int):
        h = _mix((w * 0x9E3779B1) ^ i ^ salt)
        return tuple(base + ((h >> (9 * j)) % n) for j in range(fanout))
    return fn


def _region_lines(
    spec: OpSpec, config: GPUConfig, total_accesses: int
) -> int:
    """How many lines the region of ``spec`` spans."""
    if spec.pattern in ("random", "reuse") or spec.footprint is not None:
        l2_lines = max(1, config.l2_size // config.line_size)
        mult = spec.footprint if spec.footprint is not None else 1.0
        return max(64, int(l2_lines * mult))
    # Streamed/strided data is touched roughly once.
    return max(64, total_accesses)


def _phase(spec) -> int:
    return max(1, getattr(spec, "phase", 1))


def _address_fn(
    spec: OpSpec, op_index: int, config: GPUConfig,
    total_warps: int, iterations: int, seed: int,
):
    region = spec.region if spec.region else op_index
    base = (region + 1) * REGION_STRIDE
    phase = _phase(spec)
    total = total_warps * (iterations // phase + 1) * spec.fanout
    n = _region_lines(spec, config, total)
    salt = _mix(seed * 7919 + op_index)
    if spec.pattern == "stream":
        return _stream_fn(base, n, total_warps, spec.fanout, phase)
    if spec.pattern == "stride":
        return _stride_fn(base, n, total_warps, spec.fanout, phase)
    if spec.pattern == "random":
        return _random_fn(base, n, salt, spec.fanout)
    if spec.pattern == "reuse":
        return _reuse_fn(base, n, salt, spec.fanout)
    raise ValueError(f"unknown access pattern {spec.pattern!r}")


# ----------------------------------------------------------------------
# Program construction
# ----------------------------------------------------------------------
def build_program(
    app: AppProfile,
    config: GPUConfig,
    total_warps: int,
    scale: TraceScale = TraceScale(),
) -> Program:
    """Expand the profile's body into a concrete instruction loop."""
    iterations = max(1, round(app.iterations * scale.work))
    body: list[Instr] = []
    load_slot = 0
    last_load_reg = 1
    op_index = 0
    for spec in app.body:
        for _ in range(spec.count):
            if spec.kind == "alu":
                body.append(Instr(
                    OpKind.ALU, latency=4,
                    dst_mask=reg_mask(1), src_mask=reg_mask(last_load_reg),
                    tag="alu",
                ))
            elif spec.kind == "heavy_alu":
                body.append(Instr(
                    OpKind.ALU, latency=12,
                    dst_mask=reg_mask(2), src_mask=reg_mask(1),
                    tag="heavy_alu",
                ))
            elif spec.kind == "sfu":
                body.append(Instr(
                    OpKind.SFU, latency=20,
                    dst_mask=reg_mask(2), src_mask=reg_mask(1),
                    tag="sfu",
                ))
            elif spec.kind == "load":
                reg = LOAD_REGS[load_slot % len(LOAD_REGS)]
                load_slot += 1
                last_load_reg = reg
                body.append(Instr(
                    OpKind.LOAD,
                    dst_mask=reg_mask(reg), src_mask=reg_mask(0),
                    space=MemSpace.GLOBAL,
                    addr_fn=_address_fn(
                        spec, op_index, config, total_warps, iterations,
                        app.seed,
                    ),
                    tag=f"load{op_index}",
                ))
                op_index += 1
            elif spec.kind == "store":
                body.append(Instr(
                    OpKind.STORE, latency=1,
                    src_mask=reg_mask(1),
                    space=MemSpace.GLOBAL,
                    addr_fn=_address_fn(
                        spec, op_index, config, total_warps, iterations,
                        app.seed,
                    ),
                    tag=f"store{op_index}",
                ))
                op_index += 1
            elif spec.kind == "shared_load":
                body.append(Instr(
                    OpKind.LOAD,
                    dst_mask=reg_mask(7), src_mask=reg_mask(1),
                    space=MemSpace.SHARED,
                    tag="shared_load",
                ))
            elif spec.kind == "sync":
                body.append(sync())
            else:
                raise ValueError(f"unknown op kind {spec.kind!r}")
    return Program(body=tuple(body), iterations=iterations, name=app.name)


def _grid(
    app: AppProfile, config: GPUConfig, scale: TraceScale
) -> tuple[int, int]:
    """Grid size for ``app`` on ``config``: ``(n_blocks, total_warps)``."""
    threads_per_block = app.warps_per_block * config.warp_size
    regs_per_block = app.regs_per_thread * threads_per_block
    limits = [
        config.max_threads_per_sm // threads_per_block,
        config.max_blocks_per_sm,
        config.warps_per_sm // app.warps_per_block,
        config.registers_per_sm // regs_per_block,
    ]
    if app.smem_per_block:
        limits.append(config.smem_per_sm // app.smem_per_block)
    blocks_per_sm = max(1, min(limits))

    waves = scale.waves if scale.waves is not None else app.waves
    n_blocks = max(1, math.ceil(waves * config.n_sms * blocks_per_sm))
    return n_blocks, n_blocks * app.warps_per_block


def footprint_extents(
    app: AppProfile,
    config: GPUConfig,
    scale: TraceScale = TraceScale(),
) -> tuple[tuple[int, int], ...]:
    """Line-address extents of every global-memory region of ``app``.

    Returns sorted ``(base_line, n_lines)`` pairs covering every address
    any of the kernel's address generators can produce (each generator
    stays within ``[base, base + n)`` by construction). Regions sharing
    a base (same explicit ``region`` id) are merged to their maximum
    extent. Used to eagerly batch-compress the whole memory image into
    a :class:`~repro.memory.plane.CompressionPlane`.
    """
    _, total_warps = _grid(app, config, scale)
    iterations = max(1, round(app.iterations * scale.work))
    extents: dict[int, int] = {}
    op_index = 0
    for spec in app.body:
        for _ in range(spec.count):
            if spec.kind not in ("load", "store"):
                continue
            # Mirrors the op_index / region bookkeeping of build_program
            # and the sizing arithmetic of _address_fn exactly.
            region = spec.region if spec.region else op_index
            base = (region + 1) * REGION_STRIDE
            phase = _phase(spec)
            total = total_warps * (iterations // phase + 1) * spec.fanout
            n = _region_lines(spec, config, total)
            if n > extents.get(base, 0):
                extents[base] = n
            op_index += 1
    return tuple(sorted(extents.items()))


def build_kernel(
    app: AppProfile,
    config: GPUConfig,
    scale: TraceScale = TraceScale(),
) -> Kernel:
    """Build the kernel launch for ``app`` on ``config``.

    The grid is sized to ``app.waves`` full-machine waves of thread
    blocks, using the plain-kernel occupancy (assist-warp register
    pressure may later reduce the resident blocks — that effect is part
    of what the simulation measures, not of the grid size).
    """
    n_blocks, total_warps = _grid(app, config, scale)
    program = build_program(app, config, total_warps, scale)
    return Kernel(
        name=app.name,
        program=program,
        n_blocks=n_blocks,
        warps_per_block=app.warps_per_block,
        regs_per_thread=app.regs_per_thread,
        smem_per_block=app.smem_per_block,
        warp_size=config.warp_size,
    )
