"""Request payloads <-> run specs, and results -> JSON.

The service speaks JSON; the harness speaks :class:`RunSpec`. This
module is the (stateless) boundary between the two:

* :func:`parse_request` turns a submission payload into the ordered
  spec list it names — either an explicit ``runs`` list or a ``sweep``
  cross product (apps x designs, the shape of the paper's Figure 7/8/9
  matrices). Bad payloads raise :class:`BadRequest` with a message fit
  for an HTTP 400 body.
* :func:`spec_key` is the content address of one spec — the *same*
  sha256 the persistent :mod:`repro.harness.cache` uses, so the
  service's dedup and the on-disk cache agree by construction.
* :func:`job_key` addresses a whole submission (the in-flight
  coalescing unit): the version stamp plus the sorted spec keys, so
  two tenants submitting the same sweep — in any order — share one
  execution.
* :func:`result_payload` / :func:`failure_payload` flatten run
  outcomes to JSON-safe dicts. Serialized with ``sort_keys`` by the
  server, identical results serialize to identical bytes — the
  two-tenant byte-for-byte guarantee rests on this.

Service specs default to **exact** simulation (``sample=None``) rather
than following ``REPRO_SAMPLE``: a shared server must not let one
process's ambient environment silently change what another tenant's
cache-hit results mean. Sampling is opt-in per run via ``"sample"``.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro import design as designs
from repro.gpu.config import GPUConfig
from repro.gpu.sampling import SampleConfig
from repro.gpu.stats import Slot
from repro.harness.cache import version_stamp
from repro.harness.parallel import RunFailure
from repro.harness.runner import RunResult, RunSpec
from repro.workloads.apps import get_app

#: Machine configurations addressable from a payload (mirrors the CLI).
CONFIGS = {
    "small": GPUConfig.small,
    "medium": GPUConfig.medium,
    "full": GPUConfig,
}

#: Design factories addressable from a payload (mirrors the CLI).
DESIGNS = {
    "base": lambda algo: designs.base(),
    "hw-mem": designs.hw_mem,
    "hw": designs.hw,
    "caba": designs.caba,
    "caba-l2u": designs.caba_l2_uncompressed,
    "ideal": designs.ideal,
}

#: Specs per submission ceiling: a protocol sanity bound (per-tenant
#: quotas are the real limiter and usually bind first).
MAX_SPECS_PER_JOB = 4096


class BadRequest(ValueError):
    """The payload is malformed; the message is the HTTP 400 detail."""


def _parse_design(name: object, algorithm: object) -> object:
    if not isinstance(name, str) or name not in DESIGNS:
        raise BadRequest(
            f"unknown design {name!r} (want one of {sorted(DESIGNS)})"
        )
    if not isinstance(algorithm, str):
        raise BadRequest(f"algorithm must be a string, got {algorithm!r}")
    # DesignPoint does not validate algorithm names (they resolve lazily
    # at simulation time); a service submission must fail at the door.
    from repro.compression import ALGORITHMS

    if name != "base" and algorithm not in ALGORITHMS:
        raise BadRequest(
            f"unknown algorithm {algorithm!r} "
            f"(want one of {sorted(ALGORITHMS)})"
        )
    try:
        return DESIGNS[name](algorithm)
    except (KeyError, ValueError) as exc:
        raise BadRequest(f"bad design {name!r}/{algorithm!r}: {exc}")


def _parse_config(name: object, bandwidth_scale: object) -> GPUConfig:
    if not isinstance(name, str) or name not in CONFIGS:
        raise BadRequest(
            f"unknown config {name!r} (want one of {sorted(CONFIGS)})"
        )
    config = CONFIGS[name]()
    if bandwidth_scale != 1.0:
        if not isinstance(bandwidth_scale, (int, float)) \
                or bandwidth_scale <= 0:
            raise BadRequest(
                f"bandwidth_scale must be a positive number, got "
                f"{bandwidth_scale!r}"
            )
        config = config.with_bandwidth_scale(float(bandwidth_scale))
    return config


def _parse_sample(value: object) -> SampleConfig | None:
    """``null``/absent = exact; ``true``/``"1"`` = default period;
    ``"W:M:S"`` = explicit knobs."""
    if value is None:
        return None
    if value is True:
        return SampleConfig()
    if isinstance(value, str):
        try:
            return SampleConfig.parse(value)
        except ValueError as exc:
            raise BadRequest(f"bad sample {value!r}: {exc}")
    raise BadRequest(f"bad sample {value!r} (want null, true or 'W:M:S')")


def _parse_run(entry: object) -> RunSpec:
    if not isinstance(entry, dict):
        raise BadRequest(f"each run must be an object, got {entry!r}")
    unknown = set(entry) - {"app", "design", "algorithm", "config",
                            "bandwidth_scale", "sample"}
    if unknown:
        raise BadRequest(f"unknown run field(s) {sorted(unknown)}")
    app = entry.get("app")
    if not isinstance(app, str):
        raise BadRequest(f"run needs an 'app' string, got {app!r}")
    try:
        profile = get_app(app)
    except KeyError as exc:
        raise BadRequest(f"unknown app: {exc}")
    return RunSpec(
        app=profile.name,
        design=_parse_design(entry.get("design", "caba"),
                             entry.get("algorithm", "bdi")),
        config=_parse_config(entry.get("config", "small"),
                             entry.get("bandwidth_scale", 1.0)),
        sample=_parse_sample(entry.get("sample")),
    )


def _parse_sweep(sweep: object) -> list[RunSpec]:
    if not isinstance(sweep, dict):
        raise BadRequest(f"'sweep' must be an object, got {sweep!r}")
    unknown = set(sweep) - {"apps", "designs", "algorithm", "config",
                            "bandwidth_scale", "sample"}
    if unknown:
        raise BadRequest(f"unknown sweep field(s) {sorted(unknown)}")
    apps = sweep.get("apps")
    if not isinstance(apps, list) or not apps:
        raise BadRequest("'sweep.apps' must be a non-empty list")
    names = sweep.get("designs", sorted(DESIGNS))
    if not isinstance(names, list) or not names:
        raise BadRequest("'sweep.designs' must be a non-empty list")
    specs = []
    for app in apps:
        for design in names:
            specs.append(_parse_run({
                "app": app,
                "design": design,
                "algorithm": sweep.get("algorithm", "bdi"),
                "config": sweep.get("config", "small"),
                "bandwidth_scale": sweep.get("bandwidth_scale", 1.0),
                "sample": sweep.get("sample"),
            }))
    return specs


def parse_request(payload: object) -> list[RunSpec]:
    """The ordered, de-duplicated spec list one submission names."""
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    runs = payload.get("runs")
    sweep = payload.get("sweep")
    if (runs is None) == (sweep is None):
        raise BadRequest("request needs exactly one of 'runs' or 'sweep'")
    if runs is not None:
        if not isinstance(runs, list) or not runs:
            raise BadRequest("'runs' must be a non-empty list")
        specs = [_parse_run(entry) for entry in runs]
    else:
        specs = _parse_sweep(sweep)
    unique: list[RunSpec] = []
    seen: set[RunSpec] = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)
    if len(unique) > MAX_SPECS_PER_JOB:
        raise BadRequest(
            f"submission names {len(unique)} unique runs "
            f"(max {MAX_SPECS_PER_JOB})"
        )
    return unique


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
def spec_key(spec: RunSpec) -> str:
    """Content address of one run — identical to ``RunCache.key``."""
    payload = f"{version_stamp()}|{spec.canonical()}"
    return hashlib.sha256(payload.encode()).hexdigest()


def job_key(specs: Sequence[RunSpec]) -> str:
    """Content address of a whole submission: the in-flight coalescing
    unit. Order-insensitive, so permuted resubmissions still coalesce."""
    digest = hashlib.sha256(version_stamp().encode())
    for key in sorted(spec_key(spec) for spec in specs):
        digest.update(key.encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Result serialization
# ----------------------------------------------------------------------
def result_payload(result: RunResult) -> dict:
    """One run's metrics as a JSON-safe dict (raw/obs excluded)."""
    return {
        "app": result.app,
        "design": result.design,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "instructions": result.instructions,
        "assist_instructions": result.assist_instructions,
        "bandwidth_utilization": result.bandwidth_utilization,
        "compression_ratio": result.compression_ratio,
        "energy": result.energy.as_dict(),
        "slot_breakdown": {
            slot.name.lower(): result.slot_breakdown[slot] for slot in Slot
        },
        "md_cache_hit_rate": result.md_cache_hit_rate,
        "dram_bursts": dict(result.dram_bursts),
        "l2_hit_rate": result.l2_hit_rate,
        "truncated": result.truncated,
        "occupancy_blocks": result.occupancy_blocks,
        "lines_compressed": result.lines_compressed,
        "l1_stores": result.l1_stores,
        "rmw_reads": result.rmw_reads,
        "capacity": result.capacity,
        "scenario": result.scenario,
    }


def failure_payload(failure: RunFailure) -> dict:
    """One structured RunFailure as a JSON-safe dict."""
    return {
        "app": failure.spec.app,
        "design": failure.spec.design.name,
        "kind": failure.kind,
        "attempts": failure.attempts,
        "exception": failure.exception,
        "worker_pid": failure.worker_pid,
    }


def spec_label(spec: RunSpec) -> str:
    """Human-readable identity used in events and status rows."""
    return f"{spec.app}@{spec.design.name}"


def stall_summary(results: Sequence[RunResult]) -> dict:
    """Mean issue-slot attribution over the landed results (the same
    five slots Figure 1 reports), streamed while a sweep is running."""
    if not results:
        return {}
    return {
        slot.name.lower(): (
            sum(r.slot_breakdown[slot] for r in results) / len(results)
        )
        for slot in Slot
    }
