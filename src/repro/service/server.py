"""Asyncio HTTP front end for the sweep job store.

Simulation-as-a-service over the standard library only: an
``asyncio.start_server`` loop speaking just enough HTTP/1.1 for the
JSON API below. No framework, no threads-per-connection — blocking
store calls (submission's cache probe, the events long-poll) hop to
the default executor so slow readers never stall the accept loop.

Routes (all JSON, serialized with ``sort_keys`` so identical payloads
are byte-for-byte identical):

* ``GET  /v1/health``                liveness probe
* ``GET  /v1/stats``                 queue/dedup/quota/simulation counters
* ``POST /v1/jobs``                  submit a RunSpec list or sweep;
                                     202 with the job id, 400 on a bad
                                     payload, 429 with a structured
                                     quota error (code + retry-after)
* ``GET  /v1/jobs/<id>``             progress: per-spec counts, stall
                                     attribution so far, failures so far
* ``GET  /v1/jobs/<id>/result``      full results (409 until terminal)
* ``GET  /v1/jobs/<id>/events``      seq-numbered events; ``?since=N``
                                     resumes, ``&wait=S`` long-polls

Distributed-fabric extensions (see :mod:`repro.service.fabric`):

* ``GET/HEAD/PUT /v1/cache/<kind>/<key>`` — raw-bytes access to the
  coordinator's content-addressed cache (``kind`` is ``runs`` /
  ``planes`` / ``traces``); ``GET /v1/cache/<kind>`` lists keys. 404
  ``cache-disabled`` when the persistent cache is off.
* ``POST /v1/workers/register|lease|complete|heartbeat`` — the work-
  leasing protocol; 404 ``fabric-disabled`` unless the store's engine
  is a :class:`~repro.service.fabric.FabricCoordinator`
  (``repro serve --fabric``). Protocol violations are structured 409s.

The tenant is the ``X-Tenant`` header (or ``"tenant"`` in the POST
body; header wins), defaulting to ``"anonymous"`` — an accounting
identity for quotas, not authentication.

Knobs (``ServiceConfig.from_env``; also in README.md): REPRO_SERVE_HOST,
REPRO_SERVE_PORT, REPRO_SERVE_JOBS, REPRO_SERVE_RATE, REPRO_SERVE_BURST,
REPRO_SERVE_MAX_QUEUED, REPRO_SERVE_MAX_INFLIGHT, and the
``REPRO_FABRIC*`` set.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

from repro.harness import cache as cache_mod
from repro.harness.cache import valid_cache_key
from repro.harness.parallel import ExperimentEngine
from repro.service.fabric import FabricCoordinator, FabricError
from repro.service.jobs import JobNotFinished, JobStore, UnknownJob
from repro.service.quota import QuotaExceeded, QuotaLimits
from repro.service.specs import BadRequest

#: Request body ceiling (a 4096-spec sweep is far below this).
MAX_BODY = 8 * 1024 * 1024

#: Long-poll ceiling: clients wanting longer just re-poll with `since`.
MAX_EVENT_WAIT = 30.0


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


@dataclass
class ServiceConfig:
    """Server knobs; :meth:`from_env` reads the ``REPRO_SERVE_*`` set."""

    host: str = "127.0.0.1"
    port: int = 8377
    #: Simulation worker processes per sweep (1 = in-process serial).
    jobs: int = 1
    #: Lease work to remote `repro worker` processes instead of
    #: simulating in-process (REPRO_FABRIC=1 or `repro serve --fabric`).
    fabric: bool = False
    limits: QuotaLimits = None

    def __post_init__(self) -> None:
        if self.limits is None:
            self.limits = QuotaLimits()

    @classmethod
    def from_env(cls) -> "ServiceConfig":
        from repro.service.fabric import fabric_enabled
        return cls(
            host=os.environ.get("REPRO_SERVE_HOST", "127.0.0.1"),
            port=_env_int("REPRO_SERVE_PORT", 8377),
            jobs=max(1, _env_int("REPRO_SERVE_JOBS", 1)),
            fabric=fabric_enabled(),
            limits=QuotaLimits(
                rate=_env_float("REPRO_SERVE_RATE", QuotaLimits.rate),
                burst=_env_float("REPRO_SERVE_BURST", QuotaLimits.burst),
                max_queued_jobs=_env_int(
                    "REPRO_SERVE_MAX_QUEUED", QuotaLimits.max_queued_jobs
                ),
                max_inflight_specs=_env_int(
                    "REPRO_SERVE_MAX_INFLIGHT",
                    QuotaLimits.max_inflight_specs,
                ),
            ),
        )


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error"}


def _response(status: int, payload: dict,
              extra_headers: dict | None = None) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode() + b"\n"
    headers = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return "\r\n".join(headers).encode() + b"\r\n\r\n" + body


def _raw_response(status: int, body: bytes = b"",
                  content_type: str = "application/octet-stream",
                  head: bool = False) -> bytes:
    """A non-JSON response (cache entry bytes; empty HEAD replies).
    ``head`` advertises the length without sending the body."""
    headers = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    prefix = "\r\n".join(headers).encode() + b"\r\n\r\n"
    return prefix if head else prefix + body


def _error(status: int, code: str, message: str, **fields) -> bytes:
    extra = {}
    retry_after = fields.get("retry_after")
    if retry_after is not None:
        extra["Retry-After"] = f"{max(0.0, retry_after):.3f}"
    return _response(
        status, {"error": {"code": code, "message": message, **fields}},
        extra_headers=extra,
    )


class SweepServer:
    """The asyncio front end; owns nothing but sockets (the store owns
    all job state, so tests drive the store directly too)."""

    def __init__(self, store: JobStore,
                 config: ServiceConfig | None = None) -> None:
        self.store = store
        self.config = config or ServiceConfig()
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop_event: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode().split(None, 2)
        except ValueError:
            return None
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            return method, target, headers, None  # signal: too large
        if length:
            body = await reader.readexactly(length)
        return method, target, headers, body

    async def _handle(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, target, headers, body = request
            if body is None:
                writer.write(_error(413, "too-large",
                                    f"body exceeds {MAX_BODY} bytes"))
            else:
                writer.write(await self._route(method, target,
                                               headers, body))
            await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except Exception as exc:  # never kill the accept loop
            try:
                writer.write(_error(500, "internal", repr(exc)))
                await writer.drain()
            except Exception:
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, target: str,
                     headers: dict, body: bytes) -> bytes:
        url = urlsplit(target)
        path = url.path.rstrip("/")
        query = parse_qs(url.query)
        if path == "/v1/health" and method == "GET":
            return _response(200, {"ok": True})
        if path == "/v1/stats" and method == "GET":
            return _response(200, await self._call(self.store.stats))
        if path == "/v1/jobs":
            if method != "POST":
                return _error(405, "method-not-allowed",
                              f"{method} not allowed on {path}")
            return await self._submit(headers, body)
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            try:
                if not tail:
                    return _response(
                        200, await self._call(self.store.status, job_id)
                    )
                if tail == "result":
                    return _response(
                        200, await self._call(self.store.result, job_id)
                    )
                if tail == "events":
                    return await self._events(job_id, query)
            except UnknownJob as exc:
                return _error(404, "unknown-job", str(exc))
            except JobNotFinished as exc:
                return _error(409, "not-finished", str(exc))
        if path.startswith("/v1/cache/"):
            return await self._cache(method, path[len("/v1/cache/"):],
                                     query, body)
        if path.startswith("/v1/workers/"):
            if method != "POST":
                return _error(405, "method-not-allowed",
                              f"{method} not allowed on {path}")
            return await self._fabric(path[len("/v1/workers/"):], body)
        return _error(404, "not-found", f"no route for {method} {path}")

    # ------------------------------------------------------------------
    # Fabric: shared cache + work leasing
    # ------------------------------------------------------------------
    async def _cache(self, method: str, rest: str,
                     query: dict, body: bytes) -> bytes:
        cache = cache_mod.get_cache()
        if cache is None:
            return _error(404, "cache-disabled",
                          "the persistent cache is disabled on this "
                          "server (REPRO_CACHE=0)")
        kind, _, key = rest.partition("/")
        if not key:
            if method != "GET" or kind not in cache_mod.CACHE_KINDS:
                return _error(404, "not-found",
                              f"no cache listing for {kind!r}")
            keys = await self._call(cache.backend.list, kind)
            return _response(200, {"kind": kind, "keys": keys})
        if not valid_cache_key(kind, key):
            return _error(400, "bad-key",
                          f"malformed cache address {kind}/{key}")
        if method == "GET":
            data = await self._call(cache.backend.get, kind, key)
            if data is None:
                return _raw_response(404)
            return _raw_response(200, data)
        if method == "HEAD":
            present = await self._call(cache.backend.has, kind, key)
            return _raw_response(200 if present else 404, head=True)
        if method == "PUT":
            overwrite = query.get("overwrite", ["0"])[0] == "1"
            await self._call(
                lambda: cache.backend.put(kind, key, body,
                                          overwrite=overwrite)
            )
            return _response(200, {"kind": kind, "key": key,
                                   "bytes": len(body)})
        return _error(405, "method-not-allowed",
                      f"{method} not allowed on cache entries")

    async def _fabric(self, action: str, body: bytes) -> bytes:
        engine = self.store.engine
        if not hasattr(engine, "lease"):
            return _error(404, "fabric-disabled",
                          "this server runs sweeps in-process; start "
                          "it with 'repro serve --fabric' to lease "
                          "work to remote workers")
        try:
            payload = json.loads(body.decode() or "null")
        except ValueError as exc:
            return _error(400, "bad-json", f"request body is not JSON: {exc}")
        if not isinstance(payload, dict):
            return _error(400, "bad-request", "expected a JSON object")
        try:
            if action == "register":
                return _response(200, await self._call(
                    engine.register,
                    str(payload.get("name", "anonymous")),
                    str(payload.get("stamp", "")),
                ))
            if action == "lease":
                max_specs = payload.get("max_specs")
                return _response(200, await self._call(
                    lambda: engine.lease(
                        str(payload.get("worker", "")),
                        int(max_specs) if max_specs is not None else None,
                    )
                ))
            if action == "complete":
                return _response(200, await self._call(
                    lambda: engine.complete(
                        str(payload.get("worker", "")),
                        str(payload.get("lease", "")),
                        done=[str(k) for k in payload.get("done", [])],
                        failures=[f for f in payload.get("failures", [])
                                  if isinstance(f, dict)],
                        simulated=int(payload.get("simulated", 0)),
                        cached=int(payload.get("cached", 0)),
                    )
                ))
            if action == "heartbeat":
                return _response(200, await self._call(
                    engine.heartbeat, str(payload.get("worker", ""))
                ))
        except FabricError as exc:
            return _error(409, exc.code, str(exc))
        except (TypeError, ValueError) as exc:
            return _error(400, "bad-request", str(exc))
        return _error(404, "not-found", f"no fabric action {action!r}")

    async def _call(self, fn, *args):
        """Run a (briefly) blocking store call off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            None, fn, *args
        )

    async def _submit(self, headers: dict, body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode() or "null")
        except ValueError as exc:
            return _error(400, "bad-json", f"request body is not JSON: {exc}")
        tenant = headers.get("x-tenant")
        if not tenant and isinstance(payload, dict):
            tenant = payload.get("tenant")
        tenant = tenant or "anonymous"
        if not isinstance(tenant, str):
            return _error(400, "bad-request",
                          f"tenant must be a string, got {tenant!r}")
        try:
            job = await self._call(self.store.submit, tenant, payload)
        except BadRequest as exc:
            return _error(400, "bad-request", str(exc))
        except QuotaExceeded as exc:
            return _error(429, exc.code, str(exc), tenant=tenant,
                          retry_after=exc.retry_after)
        return _response(202, {
            "job": job.id,
            "tenant": job.tenant,
            "served_from": job.served_from,
            "specs": len(job.work.specs),
            "status": job.work.status,
        })

    async def _events(self, job_id: str, query: dict) -> bytes:
        try:
            since = int(query.get("since", ["0"])[0])
            wait = min(MAX_EVENT_WAIT,
                       float(query.get("wait", ["0"])[0]))
        except ValueError:
            return _error(400, "bad-request",
                          "'since' must be an int and 'wait' a float")
        events = await self._call(
            lambda: self.store.events(job_id, since=since, wait=wait)
        )
        return _response(200, {"job": job_id, "events": events})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def serve(self) -> None:
        """Run in the current event loop until cancelled."""
        server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self._server = server
        self.address = server.sockets[0].getsockname()[:2]
        async with server:
            await server.serve_forever()

    def start_background(self) -> tuple[str, int]:
        """Run the server in a dedicated event-loop thread; returns the
        bound (host, port) — with port 0 this is how tests learn the
        real port."""
        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def main() -> None:
                self._stop_event = asyncio.Event()
                server = await asyncio.start_server(
                    self._handle, self.config.host, self.config.port
                )
                self._server = server
                self.address = server.sockets[0].getsockname()[:2]
                started.set()
                await self._stop_event.wait()
                server.close()
                await server.wait_closed()

            try:
                loop.run_until_complete(main())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-sweep-server", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=10.0):
            raise RuntimeError("sweep server failed to start")
        return self.address

    def stop(self) -> None:
        """Stop a background server (idempotent); the store survives."""
        loop, self._loop = self._loop, None
        if loop is not None:
            loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None


def make_server(config: ServiceConfig | None = None) -> SweepServer:
    """A server over a fresh store built from ``config``. With
    ``config.fabric`` the store's engine is a lease coordinator and
    sweeps wait for remote ``repro worker`` processes."""
    config = config or ServiceConfig.from_env()
    if config.fabric:
        engine = FabricCoordinator()
    else:
        engine = ExperimentEngine(jobs=config.jobs)
    store = JobStore(engine=engine, limits=config.limits)
    return SweepServer(store, config)
