"""Per-tenant admission control: token-bucket rates and work quotas.

The sweep service is multi-tenant over one shared machine and one
shared content-addressed cache, so admission control is the only thing
standing between one noisy client and everyone else's latency. Three
independent limits apply at submission time, all per tenant:

* a **token bucket** on submissions (sustained ``rate`` jobs/second
  with ``burst`` capacity) — absorbs bursts, rejects floods,
* **max queued jobs** — bounds how deep one tenant's backlog can grow,
* **max in-flight specs** — bounds the simulation work (the expensive
  resource) one tenant can hold queued + running at once.

A violation raises :class:`QuotaExceeded` with a machine-readable
``code``; the server maps it to a structured HTTP 429 and — crucially —
nothing else: the offending request is dropped before it touches the
queue, so other tenants' jobs are never disturbed.

Coalesced and cache-served submissions still pay the token bucket (the
request itself has a cost) but a cache-served job releases its work
reservation immediately — dedup makes quota headroom, not just speed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


class QuotaExceeded(Exception):
    """A per-tenant limit rejected the submission.

    ``code`` is machine-readable: ``rate-limited``, ``queue-full`` or
    ``inflight-full``. ``retry_after`` (seconds) is a hint for
    ``rate-limited`` rejections.
    """

    def __init__(self, code: str, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``clock`` is injectable so tests drive time deterministically.
    A non-positive ``rate`` disables rate limiting entirely.
    """

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic) -> None:
        self.rate = rate
        self.burst = max(burst, 1.0)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; refills lazily from the clock."""
        if self.rate <= 0:
            return True
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` would be available (0 if now)."""
        if self.rate <= 0:
            return 0.0
        deficit = tokens - self._tokens
        return max(0.0, deficit / self.rate)


@dataclass
class _TenantState:
    bucket: TokenBucket
    queued_jobs: int = 0
    inflight_specs: int = 0
    #: Totals for the stats endpoint.
    submitted: int = 0
    rejected: int = 0


@dataclass
class QuotaLimits:
    """The per-tenant knobs (``REPRO_SERVE_*``; see ServiceConfig)."""

    rate: float = 10.0          # submissions/second, sustained
    burst: float = 20.0         # token-bucket capacity
    max_queued_jobs: int = 16   # queued (not yet running) jobs
    max_inflight_specs: int = 256  # specs queued + running
    #: Retry-After hint (seconds) for backlog rejections (queue-full /
    #: inflight-full). Unlike rate limiting there is no bucket to
    #: compute an exact refill time from — draining depends on how long
    #: the queued simulations take — so advertise the client's default
    #: poll interval: the earliest moment a well-behaved client would
    #: learn its backlog shrank anyway.
    backlog_retry_after: float = 2.0


class QuotaManager:
    """Tracks every tenant's bucket and reservations; thread-safe."""

    def __init__(self, limits: QuotaLimits | None = None,
                 clock=time.monotonic) -> None:
        self.limits = limits or QuotaLimits()
        self._clock = clock
        self._tenants: dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(
                bucket=TokenBucket(self.limits.rate, self.limits.burst,
                                   clock=self._clock)
            )
            self._tenants[tenant] = state
        return state

    def admit(self, tenant: str, n_specs: int) -> None:
        """Charge one submission of ``n_specs`` against ``tenant``.

        Raises :class:`QuotaExceeded` (and reserves nothing) when any
        limit would be violated; otherwise reserves one queued-job slot
        and ``n_specs`` in-flight specs — release with
        :meth:`release_queued` / :meth:`release_specs`.
        """
        limits = self.limits
        with self._lock:
            state = self._state(tenant)
            if not state.bucket.try_acquire():
                state.rejected += 1
                raise QuotaExceeded(
                    "rate-limited",
                    f"tenant {tenant!r} exceeded {limits.rate:g} "
                    f"submissions/s (burst {limits.burst:g})",
                    retry_after=state.bucket.retry_after(),
                )
            if state.queued_jobs + 1 > limits.max_queued_jobs:
                state.rejected += 1
                raise QuotaExceeded(
                    "queue-full",
                    f"tenant {tenant!r} already has "
                    f"{state.queued_jobs} queued job(s) "
                    f"(max {limits.max_queued_jobs})",
                    retry_after=limits.backlog_retry_after,
                )
            if state.inflight_specs + n_specs > limits.max_inflight_specs:
                state.rejected += 1
                raise QuotaExceeded(
                    "inflight-full",
                    f"tenant {tenant!r} would hold "
                    f"{state.inflight_specs + n_specs} in-flight "
                    f"spec(s) (max {limits.max_inflight_specs})",
                    retry_after=limits.backlog_retry_after,
                )
            state.queued_jobs += 1
            state.inflight_specs += n_specs
            state.submitted += 1

    def release_queued(self, tenant: str) -> None:
        """The job left the queue (started running, or never queued)."""
        with self._lock:
            state = self._state(tenant)
            state.queued_jobs = max(0, state.queued_jobs - 1)

    def release_specs(self, tenant: str, n_specs: int) -> None:
        """The job reached a terminal state; free its spec reservation."""
        with self._lock:
            state = self._state(tenant)
            state.inflight_specs = max(0, state.inflight_specs - n_specs)

    def snapshot(self) -> dict:
        """Per-tenant counters for the stats endpoint."""
        with self._lock:
            return {
                tenant: {
                    "queued_jobs": state.queued_jobs,
                    "inflight_specs": state.inflight_specs,
                    "submitted": state.submitted,
                    "rejected": state.rejected,
                }
                for tenant, state in sorted(self._tenants.items())
            }
