"""Minimal HTTP client for the sweep service (stdlib ``http.client``).

One connection per request (the server closes connections anyway),
JSON in/out. Error responses raise :class:`ServiceError` carrying the
HTTP status and the structured error body — including the quota
``code`` (``rate-limited`` / ``queue-full`` / ``inflight-full``) and
``retry_after`` hint — so callers branch on machine-readable fields,
never on message text.

``result_bytes`` returns the raw response body: the two-tenant
byte-for-byte reproducibility guarantee is asserted on these bytes,
not on parsed (and thus re-serialized) objects.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlencode, urlsplit


class ServiceError(RuntimeError):
    """A non-2xx response; carries the structured error payload."""

    def __init__(self, status: int, payload: dict) -> None:
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        self.status = status
        self.code = error.get("code", "unknown")
        self.retry_after = error.get("retry_after")
        self.payload = payload
        super().__init__(
            f"HTTP {status} [{self.code}]: "
            f"{error.get('message', payload)}"
        )


class ServiceClient:
    """Talk to one sweep server (``url`` like ``http://host:port``)."""

    def __init__(self, url: str, tenant: str = "anonymous",
                 timeout: float = 60.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {parts.scheme!r} "
                             "(the sweep server speaks plain http)")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8377
        self.tenant = tenant
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> tuple[int, bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None
            headers = {"X-Tenant": self.tenant}
            if payload is not None:
                body = json.dumps(payload, sort_keys=True)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              payload: dict | None = None) -> dict:
        status, raw = self._request(method, path, payload)
        try:
            data = json.loads(raw.decode() or "null")
        except ValueError:
            data = {"error": {"code": "bad-response",
                              "message": raw[:200].decode("latin-1")}}
        if status >= 400:
            raise ServiceError(status, data)
        return data

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._json("GET", "/v1/health")

    def stats(self) -> dict:
        return self._json("GET", "/v1/stats")

    def submit(self, payload: dict) -> dict:
        """Submit a ``{"runs": [...]}`` or ``{"sweep": {...}}`` payload;
        returns the acceptance record (job id, served_from, ...)."""
        return self._json("POST", "/v1/jobs", payload)

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}/result")

    def result_bytes(self, job_id: str) -> bytes:
        """The raw result body (for byte-identity assertions)."""
        status, raw = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status >= 400:
            try:
                data = json.loads(raw.decode() or "null")
            except ValueError:
                data = {}
            raise ServiceError(status, data)
        return raw

    def events(self, job_id: str, since: int = 0,
               wait: float = 0.0) -> list[dict]:
        query = urlencode({"since": since, "wait": wait})
        return self._json(
            "GET", f"/v1/jobs/{job_id}/events?{query}"
        )["events"]

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 2.0) -> dict:
        """Block (long-polling events) until the job is terminal;
        returns the final status payload.

        Raises :class:`TimeoutError` no later than ``timeout`` seconds
        in: the per-poll long-poll budget is clamped to the remaining
        deadline, so the last poll cannot overshoot by up to ``poll``.
        """
        deadline = time.monotonic() + timeout
        seen = 0
        while True:
            status = self.status(job_id)
            if status["status"] in ("done", "failed"):
                return status
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after "
                    f"{timeout:g}s"
                )
            fresh = self.events(job_id, since=seen,
                                wait=min(poll, remaining))
            if fresh:
                seen = max(e["seq"] for e in fresh)

    # ------------------------------------------------------------------
    # Fabric worker protocol (see repro.service.fabric)
    # ------------------------------------------------------------------
    def register_worker(self, name: str, stamp: str) -> dict:
        return self._json("POST", "/v1/workers/register",
                          {"name": name, "stamp": stamp})

    def lease(self, worker: str, max_specs: int | None = None) -> dict:
        payload: dict = {"worker": worker}
        if max_specs is not None:
            payload["max_specs"] = max_specs
        return self._json("POST", "/v1/workers/lease", payload)

    def complete(self, worker: str, lease: str,
                 done: list[str] | None = None,
                 failures: list[dict] | None = None,
                 simulated: int = 0, cached: int = 0) -> dict:
        return self._json("POST", "/v1/workers/complete", {
            "worker": worker,
            "lease": lease,
            "done": done or [],
            "failures": failures or [],
            "simulated": simulated,
            "cached": cached,
        })

    def heartbeat(self, worker: str) -> dict:
        return self._json("POST", "/v1/workers/heartbeat",
                          {"worker": worker})
