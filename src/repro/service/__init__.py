"""Simulation-as-a-service: an async sweep server over the harness.

The figure harnesses already treat every ``(app, design, machine)``
point as an independent, deterministic, content-addressed unit of work;
this package puts an HTTP facade in front of that fact. Submissions
become jobs in a queue over the fault-tolerant
:class:`~repro.harness.parallel.ExperimentEngine`; identical work —
whether re-submitted by the same tenant or a different one — is
de-duplicated at two levels (in-flight coalescing and run-cache
serving) so it costs **zero additional simulations**; token-bucket
rates and per-tenant quotas keep one noisy client from starving the
rest.

Layers (each importable on its own):

* :mod:`repro.service.specs`  — payload <-> RunSpec, content keys,
  JSON serialization
* :mod:`repro.service.quota`  — token buckets and per-tenant limits
* :mod:`repro.service.jobs`   — the job store: queue, dedup, worker,
  events
* :mod:`repro.service.fabric` — the distributed sweep fabric: lease
  coordinator + remote worker loop
* :mod:`repro.service.server` — the asyncio HTTP front end
* :mod:`repro.service.client` — the stdlib HTTP client the CLI uses

CLI: ``repro serve`` runs a server (``--fabric`` leases work to
``repro worker`` processes); ``repro submit/status/result`` talk to
one.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.fabric import (
    FabricConfig,
    FabricCoordinator,
    FabricError,
    FabricWorker,
)
from repro.service.jobs import JobNotFinished, JobStore, UnknownJob
from repro.service.quota import QuotaExceeded, QuotaLimits, QuotaManager
from repro.service.server import ServiceConfig, SweepServer, make_server
from repro.service.specs import BadRequest, job_key, parse_request, spec_key

__all__ = [
    "BadRequest",
    "FabricConfig",
    "FabricCoordinator",
    "FabricError",
    "FabricWorker",
    "JobNotFinished",
    "JobStore",
    "QuotaExceeded",
    "QuotaLimits",
    "QuotaManager",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SweepServer",
    "UnknownJob",
    "job_key",
    "make_server",
    "parse_request",
    "spec_key",
]
