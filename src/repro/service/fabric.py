"""Distributed sweep fabric: lease-based coordination over HTTP.

The single-node sweep server (PR 9) drains every work through an
in-process :class:`~repro.harness.parallel.ExperimentEngine`. The
fabric replaces that engine — and only that engine — with a
:class:`FabricCoordinator` that *leases* spec batches to remote worker
processes instead of simulating locally. Everything above it
(:class:`~repro.service.jobs.JobStore` dedup, events, quotas) is
unchanged, because the coordinator is engine-shaped: it implements the
same ``run_many(specs, strict=False, on_result=..., on_failure=...)``
/ ``close()`` surface the store already drives.

Protocol (all JSON over the existing sweep server):

* ``POST /v1/workers/register`` ``{name, stamp}`` — admits a worker.
  The version stamp must match the coordinator's: a worker built from
  different source would poison the content-addressed cache.
* ``POST /v1/workers/lease`` ``{worker, max_specs?}`` — grants up to
  ``max_specs`` pending specs under one lease with a TTL.
* ``POST /v1/workers/complete`` ``{worker, lease, done, failures,
  simulated, cached}`` — reports a lease's outcome. Results travel out
  of band: the worker uploads each result to ``/v1/cache/runs/<key>``
  *before* reporting the key done, so completion is just "the entry
  exists now" and the coordinator resolves it from its own cache.
* ``POST /v1/workers/heartbeat`` ``{worker}`` — extends the worker's
  active leases.

Failure semantics: a lease that reaches its TTL without completion
(worker crashed, hung, or partitioned) is expired by the coordinator,
each of its specs is charged one attempt and fed back to the pending
queue — the retry/timeout discipline of ``harness/parallel.py``
generalized to lost nodes. A spec that exhausts its attempt budget
becomes a structured :class:`~repro.harness.parallel.RunFailure`
(``kind="lease-expired"``), exactly what the store already renders.
Because completed specs land in the shared cache keyed by content,
re-leased and resumed sweeps coalesce onto cached entries and never
pay for a simulation twice.

Knobs (also documented in README.md):

* ``REPRO_FABRIC=1`` — make ``repro serve`` fabric-mode by default.
* ``REPRO_FABRIC_LEASE_TTL`` — lease TTL in seconds (default 30).
* ``REPRO_FABRIC_LEASE_SPECS`` — specs per lease (default 4).
* ``REPRO_FABRIC_RETRIES`` — attempts per spec before a structured
  failure (default 3).
* ``REPRO_FABRIC_POLL`` — idle worker poll interval (default 1.0s).
"""

from __future__ import annotations

import base64
import os
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.harness import cache as cache_mod
from repro.harness import runner
from repro.harness.cache import HTTPCacheBackend, version_stamp
from repro.harness.parallel import BatchResult, RunFailure
from repro.harness.runner import RunResult, RunSpec
from repro.service.specs import spec_label


class FabricError(RuntimeError):
    """A fabric-protocol violation (unknown worker, stale lease, stamp
    mismatch); mapped to a structured HTTP 409 by the server."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


# ----------------------------------------------------------------------
# Spec wire format
# ----------------------------------------------------------------------
def encode_spec(spec: RunSpec) -> str:
    """RunSpec -> base64 pickle. Lossless (specs carry frozen dataclass
    trees a JSON round-trip would flatten); safe because both ends are
    the same trusted code base — enforced by the register-time stamp
    check, which refuses workers built from different source."""
    return base64.b64encode(
        pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_spec(data: str) -> RunSpec:
    return pickle.loads(base64.b64decode(data.encode("ascii")))


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


@dataclass
class FabricConfig:
    lease_ttl: float = 30.0     # seconds a lease stays valid unrenewed
    lease_specs: int = 4        # specs granted per lease
    retries: int = 3            # attempts per spec before RunFailure
    poll: float = 1.0           # idle-worker poll hint (seconds)

    @classmethod
    def from_env(cls) -> "FabricConfig":
        return cls(
            lease_ttl=max(0.1, _env_float("REPRO_FABRIC_LEASE_TTL", 30.0)),
            lease_specs=max(1, _env_int("REPRO_FABRIC_LEASE_SPECS", 4)),
            retries=max(1, _env_int("REPRO_FABRIC_RETRIES", 3)),
            poll=max(0.05, _env_float("REPRO_FABRIC_POLL", 1.0)),
        )


def fabric_enabled() -> bool:
    """Default for ``repro serve --fabric`` (the flag still wins)."""
    return os.environ.get("REPRO_FABRIC", "0") == "1"


# ----------------------------------------------------------------------
# Coordinator state
# ----------------------------------------------------------------------
@dataclass
class _Entry:
    """One not-yet-resolved spec of the current batch."""

    spec: RunSpec
    key: str
    attempts: int = 0
    lease: str | None = None
    resolved: bool = False
    failed: bool = False
    #: RunResult or RunFailure once terminal; ``shipped`` flips when
    #: the drain thread has delivered it to the store callbacks.
    outcome: object = None
    shipped: bool = False


@dataclass
class _Lease:
    id: str
    worker: str
    keys: list[str]
    expires: float


@dataclass
class _Worker:
    id: str
    name: str
    last_seen: float
    leases_granted: int = 0
    completed: int = 0


class FabricCoordinator:
    """Engine-shaped lease coordinator (``run_many``/``close``).

    ``run_many`` parks unresolved specs in a pending queue and blocks
    until remote workers drain it; ``lease``/``complete``/``heartbeat``
    are called concurrently from the server's request threads. Lock
    ordering: store callbacks (``on_result``/``on_failure``) are always
    fired *outside* the coordinator lock, because they take the
    JobStore lock — which may itself call :meth:`stats` while held.
    """

    def __init__(self, config: FabricConfig | None = None) -> None:
        if cache_mod.get_cache() is None:
            raise FabricError(
                "cache-disabled",
                "the fabric requires the persistent cache "
                "(REPRO_CACHE=0 is set); results travel through it")
        self.config = config or FabricConfig.from_env()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._workers: dict[str, _Worker] = {}
        self._leases: dict[str, _Lease] = {}
        self._pending: deque[_Entry] = deque()
        self._by_key: dict[str, _Entry] = {}
        self._seq = 0
        self._stopping = False
        self._counters = {
            "leases_granted": 0,
            "leases_expired": 0,
            "specs_requeued": 0,
            "completed": 0,
            "remote_simulated": 0,
            "remote_cached": 0,
        }

    # ------------------------------------------------------------------
    # Engine surface (called by the JobStore drain thread)
    # ------------------------------------------------------------------
    def run_many(self, specs, strict: bool = True,
                 label: str | None = None,
                 on_result=None, on_failure=None) -> BatchResult:
        if strict:
            raise ValueError("the fabric coordinator only runs "
                             "strict=False batches (the JobStore's mode)")
        ordered = list(specs)
        unique: list[RunSpec] = []
        seen: set[RunSpec] = set()
        for spec in ordered:
            if spec not in seen:
                seen.add(spec)
                unique.append(spec)

        cache = cache_mod.get_cache()
        results: dict[RunSpec, RunResult] = {}
        failures: dict[RunSpec, RunFailure] = {}
        notify: list[tuple[RunSpec, RunResult | RunFailure]] = []

        with self._lock:
            if self._by_key:
                raise RuntimeError("a fabric batch is already active "
                                   "(the store serializes batches)")
            for spec in unique:
                hit = runner.cached_result(spec)
                if hit is not None:
                    results[spec] = hit
                    notify.append((spec, hit))
                    continue
                entry = _Entry(spec=spec, key=cache.key(spec))
                self._by_key[entry.key] = entry
                self._pending.append(entry)
            self._cond.notify_all()
        self._fire(notify, on_result, on_failure)

        # Wake often enough to expire dead leases promptly even when no
        # worker traffic arrives to do it for us.
        tick = min(1.0, self.config.lease_ttl / 4.0)
        while True:
            with self._lock:
                self._expire_locked(time.monotonic())
                open_entries = [e for e in self._by_key.values()
                                if not e.resolved and not e.failed]
                if open_entries and self._stopping:
                    for entry in open_entries:
                        entry.failed = True
                        entry.outcome = RunFailure(
                            spec=entry.spec, kind="aborted",
                            attempts=entry.attempts + 1,
                            exception="fabric coordinator shut down "
                                      "with the spec unresolved")
                    open_entries = []
                if not open_entries:
                    harvest = self._harvest_locked()
                    self._by_key.clear()
                    self._pending.clear()
                    self._leases.clear()
                else:
                    self._cond.wait(timeout=tick)
                    harvest = self._harvest_locked()
                done = not open_entries
            self._fire(harvest, on_result, on_failure)
            for spec, outcome in harvest:
                if isinstance(outcome, RunFailure):
                    failures[spec] = outcome
                else:
                    results[spec] = outcome
            if done:
                break

        aligned = [results.get(spec) for spec in ordered]
        return BatchResult(results=aligned,
                           failures=list(failures.values()))

    def close(self) -> None:
        self.abort()

    def abort(self) -> None:
        """Fail any unresolved specs and wake a blocked ``run_many``
        (called by ``JobStore.close`` before joining its drain)."""
        with self._lock:
            self._stopping = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Worker protocol (called from server request threads)
    # ------------------------------------------------------------------
    def register(self, name: str, stamp: str) -> dict:
        if stamp != version_stamp():
            raise FabricError(
                "stamp-mismatch",
                f"worker stamp {stamp!r} != coordinator stamp "
                f"{version_stamp()!r}; the worker is running different "
                "source and would poison the content-addressed cache")
        with self._lock:
            self._seq += 1
            worker = _Worker(id=f"w{self._seq}-{name}", name=name,
                             last_seen=time.monotonic())
            self._workers[worker.id] = worker
        return {
            "worker": worker.id,
            "lease_ttl": self.config.lease_ttl,
            "lease_specs": self.config.lease_specs,
            "poll": self.config.poll,
        }

    def lease(self, worker_id: str, max_specs: int | None = None) -> dict:
        now = time.monotonic()
        with self._lock:
            worker = self._worker_locked(worker_id, now)
            self._expire_locked(now)
            budget = max_specs or self.config.lease_specs
            granted: list[_Entry] = []
            while self._pending and len(granted) < budget:
                entry = self._pending.popleft()
                if entry.resolved or entry.failed or entry.lease:
                    continue  # stale queue entry from a double requeue
                granted.append(entry)
            if not granted:
                return {"lease": None, "specs": []}
            self._seq += 1
            lease = _Lease(id=f"l{self._seq}", worker=worker_id,
                           keys=[e.key for e in granted],
                           expires=now + self.config.lease_ttl)
            self._leases[lease.id] = lease
            for entry in granted:
                entry.lease = lease.id
            worker.leases_granted += 1
            self._counters["leases_granted"] += 1
            return {
                "lease": lease.id,
                "ttl": self.config.lease_ttl,
                "specs": [
                    {"key": e.key, "label": spec_label(e.spec),
                     "spec": encode_spec(e.spec)}
                    for e in granted
                ],
            }

    def complete(self, worker_id: str, lease_id: str,
                 done: list[str], failures: list[dict],
                 simulated: int = 0, cached: int = 0) -> dict:
        now = time.monotonic()
        with self._lock:
            worker = self._worker_locked(worker_id, now)
            lease = self._leases.pop(lease_id, None)
            if lease is None or lease.worker != worker_id:
                # The lease already expired (its specs are requeued or
                # re-resolved elsewhere). The worker's uploads are still
                # in the cache, so nothing is lost — whoever holds the
                # re-lease finds the entries and reports them cached.
                raise FabricError(
                    "stale-lease",
                    f"lease {lease_id!r} is not active for "
                    f"{worker_id!r} (expired and requeued?)")
            self._counters["remote_simulated"] += max(0, int(simulated))
            self._counters["remote_cached"] += max(0, int(cached))
            reported: set[str] = set()
            for key in done:
                reported.add(key)
                entry = self._by_key.get(key)
                if entry is None or entry.resolved or entry.failed:
                    continue
                entry.lease = None
                result = runner.cached_result(entry.spec)
                if result is None:
                    # Claimed done but the upload never landed: treat
                    # as a lost attempt, never as silent success.
                    self._charge_attempt_locked(
                        entry, kind="upload-missing",
                        detail="worker reported the spec done but its "
                               "result is absent from the cache")
                    continue
                entry.resolved = True
                entry.outcome = result
                worker.completed += 1
                self._counters["completed"] += 1
            for failure in failures:
                key = str(failure.get("key", ""))
                reported.add(key)
                entry = self._by_key.get(key)
                if entry is None or entry.resolved or entry.failed:
                    continue
                entry.lease = None
                self._charge_attempt_locked(
                    entry, kind=str(failure.get("kind", "error")),
                    detail=str(failure.get("exception", "worker error")))
            # Leased specs the worker did not report at all (e.g. it
            # was told to stop mid-batch) go straight back to pending
            # without burning an attempt — nothing ran.
            for key in lease.keys:
                if key in reported:
                    continue
                entry = self._by_key.get(key)
                if entry is not None and not entry.resolved \
                        and not entry.failed and entry.lease == lease.id:
                    entry.lease = None
                    self._pending.append(entry)
                    self._counters["specs_requeued"] += 1
            self._cond.notify_all()
        return {"ok": True}

    def heartbeat(self, worker_id: str) -> dict:
        now = time.monotonic()
        with self._lock:
            worker = self._worker_locked(worker_id, now)
            extended = 0
            for lease in self._leases.values():
                if lease.worker == worker_id:
                    lease.expires = now + self.config.lease_ttl
                    extended += 1
        return {"ok": True, "extended": extended,
                "worker": worker.id}

    def stats(self) -> dict:
        with self._lock:
            return {
                **self._counters,
                "workers": len(self._workers),
                "active_leases": len(self._leases),
                "pending_specs": len(self._pending),
                "lease_ttl": self.config.lease_ttl,
            }

    # ------------------------------------------------------------------
    # Internals (all *_locked require self._lock)
    # ------------------------------------------------------------------
    def _worker_locked(self, worker_id: str, now: float) -> _Worker:
        worker = self._workers.get(worker_id)
        if worker is None:
            raise FabricError("unknown-worker",
                              f"worker {worker_id!r} is not registered")
        worker.last_seen = now
        return worker

    def _charge_attempt_locked(self, entry: _Entry, kind: str,
                               detail: str) -> None:
        entry.attempts += 1
        if entry.attempts >= self.config.retries:
            entry.failed = True
            entry.outcome = RunFailure(
                spec=entry.spec, kind=kind, attempts=entry.attempts,
                exception=detail)
        else:
            self._pending.append(entry)
            self._counters["specs_requeued"] += 1

    def _expire_locked(self, now: float) -> None:
        for lease_id in [lid for lid, lease in self._leases.items()
                         if lease.expires <= now]:
            lease = self._leases.pop(lease_id)
            self._counters["leases_expired"] += 1
            for key in lease.keys:
                entry = self._by_key.get(key)
                if entry is None or entry.resolved or entry.failed \
                        or entry.lease != lease_id:
                    continue
                entry.lease = None
                self._charge_attempt_locked(
                    entry, kind="lease-expired",
                    detail=f"lease {lease_id} on worker "
                           f"{lease.worker} reached its TTL "
                           f"({self.config.lease_ttl:g}s) unrenewed")
            self._cond.notify_all()

    def _harvest_locked(self) -> list[tuple[RunSpec, object]]:
        """Collect outcomes recorded since the last harvest (request
        threads only mark entries; the drain thread ships them)."""
        out = []
        for entry in self._by_key.values():
            if entry.outcome is not None and not entry.shipped:
                entry.shipped = True
                out.append((entry.spec, entry.outcome))
        return out

    @staticmethod
    def _fire(outcomes, on_result, on_failure) -> None:
        for spec, outcome in outcomes:
            if isinstance(outcome, RunFailure):
                if on_failure is not None:
                    on_failure(outcome)
            else:
                if on_result is not None:
                    on_result(spec, outcome)


# ----------------------------------------------------------------------
# Worker loop (the `repro worker` command)
# ----------------------------------------------------------------------
class FabricWorker:
    """One worker process: register, lease, simulate, upload, repeat.

    Results are written to the coordinator's cache via the HTTP
    backend *before* the lease is reported complete, so a crash
    between upload and completion wastes nothing — the re-leased spec
    is found in the cache and reported ``cached``. Local runs use
    ``persist=False``: the worker's only durable store is the
    coordinator's, keeping every node's view of "already paid for"
    identical.
    """

    def __init__(self, url: str, name: str | None = None,
                 lease_specs: int | None = None,
                 poll: float | None = None,
                 max_idle: float | None = None,
                 stall_after: int | None = None,
                 log=None) -> None:
        # Imported here (not module top) so the harness layer's
        # cache module never has to import service code.
        from repro.service.client import ServiceClient
        self.client = ServiceClient(url, tenant=f"worker-{name or os.getpid()}")
        self.backend = HTTPCacheBackend(url)
        self.name = name or f"pid{os.getpid()}"
        self.lease_specs = lease_specs
        self.poll = poll
        self.max_idle = max_idle
        #: Test hook: stall (hold the current lease, stop heartbeating,
        #: sleep forever) after completing this many specs — makes
        #: kill-recovery deterministic in the smoke lane.
        self.stall_after = stall_after
        self._log = log or (lambda message: None)
        self._stalled = threading.Event()
        self._stop = threading.Event()
        self.completed = 0
        self.simulated = 0
        self.cached = 0

    def stop(self) -> None:
        """Ask the loop to exit after the current lease."""
        self._stop.set()

    def run(self) -> dict:
        """Blocking worker loop; returns its counters on clean exit."""
        grant = self.client.register_worker(self.name, version_stamp())
        worker_id = grant["worker"]
        ttl = float(grant["lease_ttl"])
        poll = self.poll if self.poll is not None else float(grant["poll"])
        self._log(f"registered as {worker_id} (ttl {ttl:g}s)")

        beat = threading.Thread(
            target=self._heartbeat, args=(worker_id, ttl),
            name=f"repro-worker-heartbeat-{self.name}", daemon=True)
        beat.start()

        idle = 0.0
        while not self._stop.is_set():
            lease = self.client.lease(worker_id, self.lease_specs)
            if not lease["specs"]:
                if self.max_idle is not None and idle >= self.max_idle:
                    break
                time.sleep(poll)
                idle += poll
                continue
            idle = 0.0
            self._run_lease(worker_id, lease)
        self._stop.set()
        return {"worker": worker_id, "completed": self.completed,
                "simulated": self.simulated, "cached": self.cached}

    # ------------------------------------------------------------------
    def _run_lease(self, worker_id: str, lease: dict) -> None:
        from repro.service.client import ServiceError
        done: list[str] = []
        failures: list[dict] = []
        simulated = cached = 0
        for item in lease["specs"]:
            if self.stall_after is not None \
                    and self.completed >= self.stall_after:
                self._log("stalling (test hook): holding lease "
                          f"{lease['lease']} without completing")
                self._stalled.set()  # silences the heartbeat too
                while True:
                    time.sleep(3600.0)
            key = item["key"]
            spec = decode_spec(item["spec"])
            if self.backend.has("runs", key):
                # Another node (or a previous life of this lease)
                # already paid for this spec.
                cached += 1
                done.append(key)
                self.completed += 1
                continue
            try:
                result = runner.run_spec(spec, persist=False)
                data = pickle.dumps(result,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                self.backend.put("runs", key, data)
            except Exception as exc:
                failures.append({"key": key, "kind": "error",
                                 "exception": repr(exc)})
                continue
            simulated += 1
            done.append(key)
            self.completed += 1
            self._log(f"ran {item['label']} ({key[:12]})")
        self.simulated += simulated
        self.cached += cached
        try:
            self.client.complete(worker_id, lease["lease"],
                                 done=done, failures=failures,
                                 simulated=simulated, cached=cached)
        except ServiceError as exc:
            if exc.code != "stale-lease":
                raise
            # Our lease expired under us (e.g. a long simulation
            # outlived the TTL without a heartbeat landing). The
            # uploads are in the cache; the re-leaseholder will report
            # them cached. Keep going.
            self._log(f"lease {lease['lease']} went stale before "
                      "completion; results remain in the cache")

    def _heartbeat(self, worker_id: str, ttl: float) -> None:
        interval = max(0.05, ttl / 3.0)
        while not self._stop.wait(interval):
            if self._stalled.is_set():
                return
            try:
                self.client.heartbeat(worker_id)
            except Exception:
                pass  # transient; the next beat (or lease) retries
