"""Job queue with content-address dedup over the experiment engine.

The store's unit of execution is a :class:`Work` — one unique set of
run specs, keyed by :func:`repro.service.specs.job_key` (version stamp
plus sorted spec content addresses). A :class:`Job` is one tenant's
handle onto a work; dedup happens at submission time, in two levels:

1. **In-flight coalescing** — a submission whose key matches a queued
   or running work attaches a new job to that work instead of queuing
   anything (``served_from="coalesced"``). Both tenants observe the
   same spec events and the same results.
2. **Cache serving** — a submission whose specs all resolve from the
   content-addressed run cache completes instantly
   (``served_from="cache"``) without touching the queue.

Either way the simulator runs **zero additional times** for the
duplicate — the guarantee the service tests pin against
:func:`repro.harness.runner.simulation_count`.

Execution itself is one worker thread draining the queue through
``ExperimentEngine.run_many(strict=False, on_result=..., on_failure=...)``
— the same fault-tolerant pool the figure harnesses use, so retries,
backoff, timeouts and structured :class:`RunFailure` records come for
free. Every resolved spec appends a seq-numbered event; readers
long-poll those via :meth:`JobStore.events` (condition variable, no
busy wait).

The store is thread-safe: one lock guards all job/work state, and the
engine callbacks (which run on the worker thread) take it only long
enough to record an event.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.harness import runner
from repro.harness.parallel import ExperimentEngine, RunFailure
from repro.harness.runner import RunResult, RunSpec
from repro.service import specs as specs_mod
from repro.service.quota import QuotaLimits, QuotaManager
from repro.service.specs import (
    failure_payload,
    job_key,
    result_payload,
    spec_label,
    stall_summary,
)

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

TERMINAL = (DONE, FAILED)


@dataclass
class Work:
    """One unique spec set in (or through) the execution queue."""

    key: str
    specs: list[RunSpec]
    status: str = QUEUED
    results: dict[RunSpec, RunResult] = field(default_factory=dict)
    failures: list[RunFailure] = field(default_factory=list)
    #: Pre-resolved from the run cache at submission time (subset of
    #: ``results``); reported so clients can see what dedup saved.
    cached: set[RunSpec] = field(default_factory=set)
    events: list[dict] = field(default_factory=list)
    jobs: list["Job"] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL


@dataclass
class Job:
    """One tenant's handle onto a work."""

    id: str
    tenant: str
    work: Work
    #: ``new`` (first submission), ``coalesced`` (attached to an
    #: in-flight work) or ``cache`` (served entirely from the cache).
    served_from: str


class UnknownJob(KeyError):
    """No job with that id (the HTTP layer maps this to 404)."""


class JobStore:
    """Thread-safe submission/queue/result state for the sweep server.

    Args:
        engine: The experiment engine work executes on. Defaults to a
            serial in-process engine (``jobs=1``), which keeps the
            simulation counter observable for dedup accounting; pass a
            pooled engine to fan sweeps out over processes.
        limits: Per-tenant quota knobs.
        clock: Injectable time source for the rate limiter (tests).
    """

    def __init__(self, engine: ExperimentEngine | None = None,
                 limits: QuotaLimits | None = None,
                 clock=None) -> None:
        self.engine = engine if engine is not None else ExperimentEngine(jobs=1)
        kwargs = {} if clock is None else {"clock": clock}
        self.quota = QuotaManager(limits=limits, **kwargs)
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._works: dict[str, Work] = {}
        self._queue: deque[Work] = deque()
        self._job_counter = 0
        self._stopping = False
        self._worker = threading.Thread(
            target=self._drain, name="repro-sweep-worker", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, tenant: str, payload: object) -> Job:
        """Admit one submission; returns its job handle.

        Raises :class:`~repro.service.specs.BadRequest` on a malformed
        payload and :class:`~repro.service.quota.QuotaExceeded` when a
        tenant limit rejects it — in both cases nothing is queued and
        no other tenant's work is disturbed.
        """
        specs = specs_mod.parse_request(payload)
        # Quota admission happens after parsing (a malformed request is
        # a 400, not a reservation) but before dedup lookup, so even
        # fully-deduplicated floods are rate-limited.
        self.quota.admit(tenant, len(specs))
        key = job_key(specs)
        with self._lock:
            work = self._works.get(key)
            if work is not None and not work.terminal:
                job = self._new_job(tenant, work, served_from="coalesced")
                if work.status == RUNNING:
                    self.quota.release_queued(tenant)
                self._event(work, "job-attached", job=job.id, tenant=tenant)
                return job

            work = Work(key=key, specs=list(specs))
            # Pre-resolve what the content-addressed cache already
            # knows; a fully-resolved submission never queues at all.
            for spec in specs:
                hit = runner.cached_result(spec)
                if hit is not None:
                    work.results[spec] = hit
                    work.cached.add(spec)
            self._works[key] = work
            if len(work.results) == len(specs):
                work.status = DONE
                job = self._new_job(tenant, work, served_from="cache")
                for spec in specs:
                    self._event(work, "spec-done", spec=spec_label(spec),
                                source="cache")
                self._event(work, "done", cached=len(specs))
                self._release_job(job)
                self._changed.notify_all()
                return job

            job = self._new_job(tenant, work, served_from="new")
            for spec in sorted(work.cached, key=specs.index):
                self._event(work, "spec-done", spec=spec_label(spec),
                            source="cache")
            self._event(work, "queued", specs=len(specs),
                        cached=len(work.cached))
            self._queue.append(work)
            self._changed.notify_all()
            return job

    def _new_job(self, tenant: str, work: Work, served_from: str) -> Job:
        self._job_counter += 1
        job = Job(id=f"j{self._job_counter:06d}", tenant=tenant,
                  work=work, served_from=served_from)
        self._jobs[job.id] = job
        work.jobs.append(job)
        return job

    def _event(self, work: Work, event: str, **fields) -> None:
        work.events.append({"seq": len(work.events) + 1,
                            "event": event, **fields})

    def _release_job(self, job: Job) -> None:
        """Free one job's quota reservations (terminal or cache-served)."""
        self.quota.release_queued(job.tenant)
        self.quota.release_specs(job.tenant, len(job.work.specs))

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopping:
                    self._changed.wait()
                if self._stopping:
                    return
                work = self._queue.popleft()
                work.status = RUNNING
                self._event(work, "running")
                for job in work.jobs:
                    if job.served_from != "cache":
                        self.quota.release_queued(job.tenant)
                pending = [spec for spec in work.specs
                           if spec not in work.results]
                self._changed.notify_all()

            def on_result(spec: RunSpec, result: RunResult,
                          _work=work) -> None:
                with self._lock:
                    _work.results[spec] = result
                    self._event(_work, "spec-done", spec=spec_label(spec),
                                source="run")
                    self._changed.notify_all()

            def on_failure(failure: RunFailure, _work=work) -> None:
                with self._lock:
                    _work.failures.append(failure)
                    self._event(_work, "spec-failed",
                                spec=spec_label(failure.spec),
                                kind=failure.kind,
                                attempts=failure.attempts)
                    self._changed.notify_all()

            try:
                self.engine.run_many(pending, strict=False,
                                     label=work.key[:12],
                                     on_result=on_result,
                                     on_failure=on_failure)
            except Exception as exc:  # engine-level breakage, not per-spec
                with self._lock:
                    self._event(work, "error", detail=repr(exc))

            with self._lock:
                work.status = FAILED if work.failures else DONE
                self._event(work, work.status,
                            done=len(work.results),
                            failed=len(work.failures))
                for job in work.jobs:
                    self.quota.release_specs(job.tenant, len(work.specs))
                self._changed.notify_all()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def _job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(f"unknown job {job_id!r}")
        return job

    def status(self, job_id: str) -> dict:
        """Progress snapshot: spec counts, stall attribution so far,
        structured failures so far."""
        with self._lock:
            job = self._job(job_id)
            work = job.work
            landed = [work.results[s] for s in work.specs
                      if s in work.results]
            return {
                "job": job.id,
                "tenant": job.tenant,
                "status": work.status,
                "served_from": job.served_from,
                "work": work.key,
                "specs": {
                    "total": len(work.specs),
                    "done": len(work.results),
                    "cached": len(work.cached),
                    "failed": len(work.failures),
                },
                "stalls": stall_summary(landed),
                "failures": [failure_payload(f) for f in work.failures],
                "events": len(work.events),
            }

    def result(self, job_id: str) -> dict:
        """Full results, submission-ordered; only for terminal jobs.

        The payload is *content-determined*: it carries no job id, no
        tenant, no served_from — only the work key and the results.
        Serialized with sorted keys (the server does), two tenants
        submitting the same work read byte-for-byte identical bodies
        whether theirs was the run that simulated or the one served
        from cache.
        """
        with self._lock:
            job = self._job(job_id)
            work = job.work
            if not work.terminal:
                raise JobNotFinished(
                    f"job {job.id} is {work.status}; poll status or "
                    "events until it is done"
                )
            return {
                "work": work.key,
                "status": work.status,
                "results": [
                    result_payload(work.results[s])
                    if s in work.results else None
                    for s in work.specs
                ],
                "failures": [failure_payload(f) for f in work.failures],
                "stalls": stall_summary(list(work.results.values())),
            }

    def events(self, job_id: str, since: int = 0,
               wait: float = 0.0) -> list[dict]:
        """Events with ``seq > since``; blocks up to ``wait`` seconds
        for fresh ones (long-poll). Terminal works return immediately.

        The condition variable is shared by every work, so a wake may
        have been caused by an *unrelated* job's event — hence the
        loop: re-check and keep waiting out the remaining budget
        instead of returning empty early (which would degrade every
        long-poll to a short-poll under multi-tenant load).
        """
        # Seqs are contiguous from 1, so the events newer than `since`
        # are exactly the tail slice — no full-list rescan per poll.
        # Clamp below zero: a negative slice index would mean
        # "last N events", not "everything after seq N".
        since = max(0, since)
        deadline = time.monotonic() + wait
        with self._lock:
            job = self._job(job_id)
            work = job.work
            while True:
                fresh = work.events[since:]
                if fresh or work.terminal:
                    return list(fresh)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._changed.wait(timeout=remaining)

    def stats(self) -> dict:
        """Service-wide counters for ``GET /v1/stats``."""
        with self._lock:
            by_status: dict[str, int] = {}
            for work in self._works.values():
                by_status[work.status] = by_status.get(work.status, 0) + 1
            served: dict[str, int] = {}
            for job in self._jobs.values():
                served[job.served_from] = served.get(job.served_from, 0) + 1
            payload = {
                "jobs": len(self._jobs),
                "served_from": served,
                "works": by_status,
                "queue_depth": len(self._queue),
                "simulations": runner.simulation_count(),
                "tenants": self.quota.snapshot(),
            }
            engine_stats = getattr(self.engine, "stats", None)
            if engine_stats is not None:
                payload["fabric"] = engine_stats()
            return payload

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker thread and the engine (idempotent).

        Queued-but-unstarted work is abandoned; in-flight work finishes
        its current batch first.
        """
        with self._lock:
            self._stopping = True
            self._changed.notify_all()
        # A fabric coordinator may be parked inside run_many waiting
        # for remote workers that will never come; wake it so the
        # drain thread can exit before the join below.
        abort = getattr(self.engine, "abort", None)
        if abort is not None:
            abort()
        self._worker.join(timeout=60.0)
        self.engine.close()


class JobNotFinished(RuntimeError):
    """Results were requested before the job reached a terminal state
    (the HTTP layer maps this to 409)."""
