"""Design points evaluated by the paper (Section 6).

A :class:`DesignPoint` says *where* data is compressed in the hierarchy
and *who* pays the compression/decompression cost:

* ``Base`` — no compression anywhere.
* ``HW-<algo>-Mem`` — dedicated hardware at the memory controller; only
  the DRAM link transfers compressed data (after Sathish et al. [72]).
* ``HW-<algo>`` — dedicated hardware at the cores; DRAM, L2 and the
  interconnect all carry compressed data (L1 stays uncompressed).
* ``CABA-<algo>`` — the paper's proposal: same compressed placement as
  ``HW-<algo>``, but compression and decompression run as assist warps
  through the regular pipelines.
* ``Ideal-<algo>`` — compressed everywhere CABA compresses, with zero
  latency/energy overhead and a perfect metadata path.

Section 6.5 additionally evaluates *cache* compression: ``l1_tag_mult``
and ``l2_tag_mult`` extend the L1/L2 tag stores (2x/4x) so compressed
lines increase effective capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DesignPoint:
    """One compression design evaluated by the harness."""

    name: str
    #: Compression algorithm registry name, or ``None`` for no compression.
    algorithm: str | None = None
    #: DRAM link transfers compressed data.
    compress_dram: bool = False
    #: Interconnect and L2 hold/transfer compressed data.
    compress_interconnect: bool = False
    #: Who decompresses: ``none`` | ``mc`` | ``core_hw`` | ``core_assist``.
    decompress_at: str = "none"
    #: Who compresses stores: ``none`` | ``mc_hw`` | ``core_hw`` | ``core_assist``.
    compress_at: str = "none"
    #: Zero-overhead idealization (Ideal-BDI).
    ideal: bool = False
    #: Tag-store multiplier for compressed caches (Fig. 13); 1 = normal.
    l1_tag_mult: int = 1
    l2_tag_mult: int = 1
    #: Section 6.5 selective-compression option: keep the L2 (and the
    #: interconnect replies it serves) uncompressed so L2 hits skip
    #: decompression entirely; only DRAM fills pay it. Helps apps with
    #: high L2 hit rates (e.g. RAY).
    l2_store_uncompressed: bool = False

    def __post_init__(self) -> None:
        valid_decompress = {"none", "mc", "core_hw", "core_assist"}
        valid_compress = {"none", "mc_hw", "core_hw", "core_assist"}
        if self.decompress_at not in valid_decompress:
            raise ValueError(f"bad decompress_at: {self.decompress_at!r}")
        if self.compress_at not in valid_compress:
            raise ValueError(f"bad compress_at: {self.compress_at!r}")
        if self.compression_enabled and self.algorithm is None:
            raise ValueError(f"{self.name}: compression without an algorithm")
        if self.l1_tag_mult < 1 or self.l2_tag_mult < 1:
            raise ValueError("tag multipliers must be >= 1")

    # ------------------------------------------------------------------
    @property
    def compression_enabled(self) -> bool:
        return self.compress_dram or self.compress_interconnect

    @property
    def uses_assist_warps(self) -> bool:
        return "core_assist" in (self.decompress_at, self.compress_at)

    @property
    def l1_compressed(self) -> bool:
        """Whether the L1 stores compressed data (Fig. 13 designs only)."""
        return self.l1_tag_mult > 1

    @property
    def needs_metadata(self) -> bool:
        """The MD cache is needed whenever DRAM holds compressed lines,
        except in the zero-overhead ideal design."""
        return self.compress_dram and not self.ideal

# ----------------------------------------------------------------------
# Factory functions for the paper's named designs
# ----------------------------------------------------------------------
_ALGO_SUFFIX = {"bdi": "BDI", "fpc": "FPC", "cpack": "CPack",
                "fvc": "FVC", "bestofall": "BestOfAll"}


def _suffix(algorithm: str) -> str:
    return _ALGO_SUFFIX.get(algorithm, algorithm)


def base() -> DesignPoint:
    """The uncompressed baseline."""
    return DesignPoint(name="Base")


def hw_mem(algorithm: str = "bdi") -> DesignPoint:
    """Hardware memory-bandwidth-only compression (HW-BDI-Mem)."""
    return DesignPoint(
        name=f"HW-{_suffix(algorithm)}-Mem",
        algorithm=algorithm,
        compress_dram=True,
        compress_interconnect=False,
        decompress_at="mc",
        compress_at="mc_hw",
    )


def hw(algorithm: str = "bdi") -> DesignPoint:
    """Hardware interconnect + memory compression (HW-BDI)."""
    return DesignPoint(
        name=f"HW-{_suffix(algorithm)}",
        algorithm=algorithm,
        compress_dram=True,
        compress_interconnect=True,
        decompress_at="core_hw",
        compress_at="core_hw",
    )


def caba(algorithm: str = "bdi") -> DesignPoint:
    """The paper's CABA design: assist warps do the work."""
    return DesignPoint(
        name=f"CABA-{_suffix(algorithm)}",
        algorithm=algorithm,
        compress_dram=True,
        compress_interconnect=True,
        decompress_at="core_assist",
        compress_at="core_assist",
    )


def ideal(algorithm: str = "bdi") -> DesignPoint:
    """Compression with no latency/energy overhead (Ideal-BDI)."""
    return DesignPoint(
        name=f"Ideal-{_suffix(algorithm)}",
        algorithm=algorithm,
        compress_dram=True,
        compress_interconnect=True,
        decompress_at="core_hw",
        compress_at="core_hw",
        ideal=True,
    )


def caba_l2_uncompressed(algorithm: str = "bdi") -> DesignPoint:
    """Section 6.5's per-application knob: CABA with an uncompressed L2.

    Data stays compressed in DRAM only; a decompression assist warp runs
    once per DRAM fill and the expanded line is what the L2 and the
    interconnect carry afterwards."""
    point = caba(algorithm)
    return replace(
        point,
        name=f"CABA-{_suffix(algorithm)}-L2U",
        l2_store_uncompressed=True,
    )


def caba_cache(level: str, tag_mult: int, algorithm: str = "bdi") -> DesignPoint:
    """Fig. 13 cache-compression variants: CABA-L1-2x/-4x, CABA-L2-2x/-4x."""
    if level not in ("l1", "l2"):
        raise ValueError(f"level must be 'l1' or 'l2', got {level!r}")
    point = caba(algorithm)
    return replace(
        point,
        name=f"CABA-{level.upper()}-{tag_mult}x",
        l1_tag_mult=tag_mult if level == "l1" else 1,
        l2_tag_mult=tag_mult if level == "l2" else 1,
    )


#: The five Figure-7 designs in presentation order.
def figure7_designs() -> tuple[DesignPoint, ...]:
    return (base(), hw_mem(), hw(), caba(), ideal())
