"""Figure 12: CABA sensitivity to peak off-chip bandwidth."""

from conftest import FULL, run_once

from repro.harness import figures, print_figure


def test_fig12_bw_sensitivity(benchmark, bench_config, compression_apps):
    apps = compression_apps if FULL else compression_apps[:5]
    result = run_once(
        benchmark,
        figures.fig12_bw_sensitivity,
        config=bench_config,
        apps=apps,
    )
    print_figure(result)

    s = result.summary
    # CABA beats its matching baseline at every bandwidth point.
    assert s["geomean_1/2x-CABA"] > s["geomean_1/2x-Base"]
    assert s["geomean_1x-CABA"] > s["geomean_1x-Base"]
    assert s["geomean_2x-CABA"] > s["geomean_2x-Base"]
    # More bandwidth helps the baseline (memory-bound pool).
    assert s["geomean_2x-Base"] > s["geomean_1x-Base"] > s["geomean_1/2x-Base"]
    # Paper: 1x-CABA approaches the effect of doubling the bandwidth.
    assert s["geomean_1x-CABA"] > 0.7 * s["geomean_2x-Base"]
