"""Figure 2: statically unallocated register-file fraction."""

from conftest import run_once

from repro.harness import figures, print_figure


def test_fig2_unallocated_registers(benchmark):
    result = run_once(benchmark, figures.fig2_unallocated_registers)
    print_figure(result)

    # Paper: 24% of the register file is unallocated on average.
    avg = result.summary["average_unallocated"]
    assert 0.15 <= avg <= 0.35
    assert len(result.rows) == 27
