"""Section 4.3.2: metadata-cache hit rate (paper: 85% average)."""

from conftest import run_once

from repro.harness import figures, print_figure


def test_md_cache_hit_rate(benchmark, bench_config, compression_apps):
    result = run_once(
        benchmark,
        figures.md_cache_study,
        config=bench_config,
        apps=compression_apps,
    )
    print_figure(result)

    avg = result.summary["average_hit_rate"]
    assert avg > 0.75  # paper: 85% average
    # "More than 99% for many applications": at least one app near-perfect.
    assert any(row["md_hit_rate"] > 0.95 for row in result.rows)
