"""Section 7.2 extension: stride prefetching with assist warps."""

from conftest import run_once

from repro.harness.extensions import prefetch_study
from repro.harness.report import print_figure


def test_prefetch(benchmark, bench_config):
    result = run_once(benchmark, prefetch_study, config=bench_config)
    print_figure(result)

    # A latency-bound stream must benefit at some prefetch distance.
    assert result.summary["max_speedup"] > 1.2
    assert all(row["prefetches"] > 0 for row in result.rows)
