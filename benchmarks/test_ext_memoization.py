"""Section 7.1 extension: memoization with assist warps."""

from conftest import run_once

from repro.harness.extensions import memoization_study
from repro.harness.report import print_figure


def test_memoization(benchmark, bench_config):
    result = run_once(benchmark, memoization_study, config=bench_config)
    print_figure(result)

    rows = {row["redundancy"]: row for row in result.rows}
    # Benefit grows with input redundancy; high redundancy is a clear win.
    speedups = [row["speedup"] for row in result.rows]
    assert speedups == sorted(speedups)
    assert result.summary["max_speedup"] > 1.2
    # The LUT hit rate tracks the injected redundancy.
    high = max(rows)
    assert rows[high]["lut_hit_rate"] > 0.7
