"""Figure 5: the worked BDI example (64-byte PVC line -> 17 bytes)."""

from conftest import run_once

from repro.harness import figures, print_figure


def test_fig5_bdi_example(benchmark):
    result = run_once(benchmark, figures.fig5_bdi_example)
    print_figure(result)
    row = result.rows[0]
    assert row["encoding"] == "B8D1"
    assert row["compressed_bytes"] == 17
    assert row["saved_bytes"] == 47
    assert row["round_trip"]
