"""Figure 8: DRAM bandwidth utilization of the five designs."""

from conftest import run_once

from repro.harness import figures, print_figure


def test_fig8_bandwidth(benchmark, bench_config, compression_apps):
    result = run_once(
        benchmark,
        figures.fig8_bandwidth,
        config=bench_config,
        apps=compression_apps,
    )
    print_figure(result)

    base = result.summary["avg_Base"]
    caba = result.summary["avg_CABA-BDI"]
    # Paper: utilization drops (53.6% -> 35.6% at paper scale).
    assert caba < base
    # Per-app: compression never increases utilization materially.
    for row in result.rows:
        assert row["CABA-BDI"] <= row["Base"] + 0.05, row["app"]
