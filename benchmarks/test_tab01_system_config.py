"""Table 1: parameters of the simulated system."""

from conftest import run_once

from repro.harness import figures, print_figure


def test_tab1_system_config(benchmark):
    result = run_once(benchmark, figures.tab1_system_config)
    print_figure(result)
    values = {row["parameter"]: row["value"] for row in result.rows}
    assert values["SMs"] == 15
    assert values["warps/SM"] == 48
    assert values["registers/SM"] == 32768
    assert values["memory channels"] == 6
    assert values["banks/channel"] == 16
    assert values["peak bandwidth (GB/s)"] == 177.4
    assert values["tCL/tRP/tRC/tRAS"] == "12/12/40/28"
