"""Figure 7: normalized performance of the five compression designs."""

from conftest import run_once

from repro.harness import figures, print_figure


def test_fig7_performance(benchmark, bench_config, compression_apps):
    result = run_once(
        benchmark,
        figures.fig7_performance,
        config=bench_config,
        apps=compression_apps,
    )
    print_figure(result)

    caba = result.summary["geomean_CABA-BDI"]
    ideal = result.summary["geomean_Ideal-BDI"]
    hw = result.summary["geomean_HW-BDI"]
    hw_mem = result.summary["geomean_HW-BDI-Mem"]

    # Paper: CABA-BDI +41.7% avg, within 2.8% of Ideal-BDI, 9.9% over
    # HW-BDI-Mem, ~1.6% under HW-BDI.
    assert caba > 1.15
    assert caba > hw_mem
    assert caba >= 0.85 * ideal
    assert abs(caba - hw) / hw < 0.15
    # Nothing regresses below baseline.
    for row in result.rows:
        assert row["CABA-BDI"] > 0.95, row["app"]
