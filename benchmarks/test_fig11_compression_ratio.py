"""Figure 11: compression ratio of each algorithm on each app's data."""

from conftest import FULL, run_once

from repro.harness import figures, print_figure
from repro.workloads.apps import COMPRESSION_APPS


def test_fig11_compression_ratio(benchmark):
    result = run_once(
        benchmark,
        figures.fig11_compression_ratio,
        apps=COMPRESSION_APPS,
        sample_lines=500 if FULL else 200,
    )
    print_figure(result)

    by_app = {row["app"]: row for row in result.rows}
    # Paper: MM, PVC, PVR compress better with BDI ...
    for app in ("MM", "PVC", "PVR"):
        assert by_app[app]["BDI"] > by_app[app]["FPC"], app
    # ... while LPS, JPEG, MUM, nw favour FPC or C-Pack.
    for app in ("LPS", "JPEG", "MUM", "nw"):
        best_other = max(by_app[app]["FPC"], by_app[app]["CPACK"])
        assert best_other > by_app[app]["BDI"] * 0.98, app
    # BestOfAll is the upper envelope for every application.
    for row in result.rows:
        assert row["BESTOFALL"] >= max(
            row["BDI"], row["FPC"], row["CPACK"]) - 1e-9
    # Paper: BDI delivers ~2.1x average bandwidth reduction.
    assert result.summary["avg_bdi"] > 1.5
