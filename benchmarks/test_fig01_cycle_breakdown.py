"""Figure 1: breakdown of total issue cycles vs. off-chip bandwidth."""

from conftest import run_once

from repro.gpu.stats import SLOT_LABELS, Slot
from repro.harness import figures, print_figure


def test_fig1_cycle_breakdown(benchmark, bench_config, figure1_apps):
    result = run_once(
        benchmark,
        figures.fig1_cycle_breakdown,
        config=bench_config,
        apps=figure1_apps,
    )
    print_figure(result)

    # Memory-bound apps: memory + dependence stalls dominate at 1x and
    # shrink when bandwidth doubles (the paper's motivating observation).
    at_1x = result.summary.get("mem+dep_stalls@1.0x")
    at_2x = result.summary.get("mem+dep_stalls@2.0x")
    at_half = result.summary.get("mem+dep_stalls@0.5x")
    assert at_1x is not None and at_1x > 0.35
    assert at_2x < at_1x < at_half

    # Compute-bound apps spend issue slots on compute stalls or useful
    # work, with a small memory component.
    for row in result.rows:
        if row["category"] == "compute" and row["bw"] == 1.0:
            assert row[SLOT_LABELS[Slot.MEMORY_STALL]] < 0.3
