"""Design-choice ablations for the CABA compression mechanism."""

from conftest import run_once

from repro.harness.extensions import ablation_study
from repro.harness.report import print_figure


def test_ablations(benchmark, bench_config):
    result = run_once(benchmark, ablation_study, config=bench_config)
    print_figure(result)

    rows = {row["variant"]: row for row in result.rows}
    default = rows["default"]["geomean_speedup"]
    # Every variant stays a win over the baseline (the mechanism is
    # robust to its knobs), and the default configuration is competitive.
    for row in result.rows:
        assert row["geomean_speedup"] > 1.0, row["variant"]
    best = max(row["geomean_speedup"] for row in result.rows)
    assert default > 0.9 * best
    # A larger store buffer compresses at least as many stores.
    assert (
        rows["store_buffer_64"]["compressed_store_fraction"]
        >= rows["store_buffer_4"]["compressed_store_fraction"] - 0.05
    )


def test_md_cache_size_sweep(benchmark, bench_config):
    from repro.harness.extensions import md_cache_sweep

    result = run_once(benchmark, md_cache_sweep, config=bench_config,
                      apps=("PVC", "SS"), sizes_kb=(1, 4, 8))
    print_figure(result)
    rows = sorted(result.rows, key=lambda r: r["size_kb"])
    # Hit rate is monotone-ish in capacity and good at the paper's 8 KB.
    assert rows[-1]["avg_hit_rate"] >= rows[0]["avg_hit_rate"] - 0.02
    assert rows[-1]["avg_hit_rate"] > 0.8
