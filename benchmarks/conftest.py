"""Shared configuration for the figure-reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper and prints the
rows/series the paper reports. By default a representative application
subset runs on the fast scaled machine so the whole suite finishes in
minutes; set ``REPRO_BENCH_FULL=1`` to run every application on the
medium machine (as used for EXPERIMENTS.md).

Simulations fan out over worker processes when ``--jobs N`` (or
``REPRO_JOBS=N``) is given; ``--jobs 1`` is the exact serial path.
Completed runs persist in the on-disk run cache, so repeated benchmark
invocations skip simulation.
"""

from __future__ import annotations

import os

import pytest

from repro.gpu.config import GPUConfig
from repro.harness import parallel
from repro.workloads.apps import COMPRESSION_APPS, FIGURE1_APPS

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=None,
        help="simulation worker processes (default: REPRO_JOBS or 1)",
    )


@pytest.fixture(scope="session", autouse=True)
def experiment_engine(request):
    """Configure the shared engine once per benchmark session."""
    engine = parallel.configure(jobs=request.config.getoption("--jobs"))
    yield engine
    parallel.shutdown()

#: Default compression-study subset: BDI-friendly streaming (PVC, MM,
#: PVR), FPC/C-Pack-friendly (JPEG, MUM), interconnect-bound (bfs),
#: cache-sensitive (RAY, TRA).
BENCH_COMPRESSION_APPS = (
    COMPRESSION_APPS
    if FULL
    else ("PVC", "MM", "PVR", "JPEG", "MUM", "bfs", "RAY", "TRA")
)

#: Default Figure-1 subset: memory-bound and compute-bound exemplars.
BENCH_FIGURE1_APPS = (
    FIGURE1_APPS
    if FULL
    else ("PVC", "MM", "BFS", "RAY", "dmr", "NQU", "STO", "hs")
)


@pytest.fixture(scope="session")
def bench_config() -> GPUConfig:
    return GPUConfig.medium() if FULL else GPUConfig.small()


@pytest.fixture(scope="session")
def compression_apps():
    return BENCH_COMPRESSION_APPS


@pytest.fixture(scope="session")
def figure1_apps():
    return BENCH_FIGURE1_APPS


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
