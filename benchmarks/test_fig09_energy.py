"""Figure 9: normalized energy of the five designs."""

from conftest import run_once

from repro.harness import figures, print_figure


def test_fig9_energy(benchmark, bench_config, compression_apps):
    result = run_once(
        benchmark,
        figures.fig9_energy,
        config=bench_config,
        apps=compression_apps,
    )
    print_figure(result)

    caba = result.summary["avg_CABA-BDI"]
    ideal = result.summary["avg_Ideal-BDI"]
    hw = result.summary["avg_HW-BDI"]

    # Paper: CABA saves 22.2% system energy, landing within ~4% of the
    # dedicated-hardware and ideal designs.
    assert caba < 0.95  # clear energy saving vs Base (=1.0)
    assert caba >= ideal - 0.02
    assert abs(caba - hw) < 0.1
    # DRAM energy drops substantially (paper: 29.5% DRAM power).
    assert result.summary["avg_dram_energy_reduction"] > 0.15
