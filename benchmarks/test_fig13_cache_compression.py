"""Figure 13: CABA-based cache compression (2x/4x tag stores)."""

from conftest import FULL, run_once

from repro.harness import figures, print_figure


def test_fig13_cache_compression(benchmark, bench_config, compression_apps):
    apps = compression_apps if FULL else compression_apps[:6]
    result = run_once(
        benchmark,
        figures.fig13_cache_compression,
        config=bench_config,
        apps=apps,
    )
    print_figure(result)

    # Relative to plain CABA-BDI (= 1.0 by construction).
    for row in result.rows:
        assert row["CABA-BDI"] == 1.0
    # Paper: effects are app-dependent — some apps gain from extra
    # effective capacity, while L1 compression can degrade others
    # (decompression on every hit). Both directions must appear.
    l1_values = [row["CABA-L1-2x"] for row in result.rows] + [
        row["CABA-L1-4x"] for row in result.rows
    ]
    l2_values = [row["CABA-L2-2x"] for row in result.rows] + [
        row["CABA-L2-4x"] for row in result.rows
    ]
    assert min(l1_values) < 1.0  # L1 compression hurts someone
    assert max(l2_values) > 1.0  # L2 capacity helps someone
