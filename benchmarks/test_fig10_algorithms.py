"""Figure 10: CABA speedup with FPC, BDI, C-Pack and BestOfAll."""

from conftest import run_once

from repro.harness import figures, print_figure


def test_fig10_algorithms(benchmark, bench_config, compression_apps):
    result = run_once(
        benchmark,
        figures.fig10_algorithms,
        config=bench_config,
        apps=compression_apps,
    )
    print_figure(result)

    fpc = result.summary["geomean_CABA-FPC"]
    bdi = result.summary["geomean_CABA-BDI"]
    cpack = result.summary["geomean_CABA-CPack"]

    # Paper: every algorithm improves performance (FPC +20.7%,
    # C-Pack +35.2%, BDI +41.7%), with BDI the best single algorithm.
    assert fpc > 1.02
    assert cpack > 1.02
    assert bdi > 1.10
    assert bdi > fpc
    assert bdi > cpack or abs(bdi - cpack) < 0.05
