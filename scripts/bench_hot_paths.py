#!/usr/bin/env python3
"""Microbenchmarks for the simulator and compressor hot paths.

Measures the three paths the perf work targets:

* ``sim`` — end-to-end `run_app` wall time and simulated cycles per
  second for a memory-bound CABA run and a compute-leaning Base run.
* ``cycle_loop`` — per-run ``Simulator.run()`` wall clock on the
  Table 1 machine with the vectorized core on (``REPRO_SOA=1``) vs.
  the pure-Python reference scan (``REPRO_SOA=0``), everything else
  shared. Gated two ways: the SoA machinery must not regress the pure
  path by more than 3% over the checked-in baseline, and with numpy
  available the vectorized core must hold the 2x per-run speedup
  acceptance floor (geomean over the benchmark apps).
* ``cycle_loop_sampled`` — the same per-run ``Simulator.run()`` unit,
  exact vs. interval-sampled (``repro.gpu.sampling``) at the default
  10 % detail fraction, at full trace scale (the calibrated operating
  point). Gated: sampled runs must hold a 3x speedup geomean over the
  exact SoA path *and* stay within the documented 2 % error bound on
  IPC and bandwidth utilization.
* ``bdi`` — BDI compress+decompress round-trip throughput over
  generated application lines (the byte-level inner loop).
* ``subroutines`` — assist-warp subroutine construction cost (the
  per-run `SubroutineLibrary` path).
* ``plane_build`` — batch ``size_table`` kernels vs. the scalar
  ``compress()`` loop, per algorithm.
* ``figure_sweep`` — a cold multi-design figure sweep (three apps x
  five designs plus the Fig. 11 compression study) with compression
  planes on vs. off.
* ``trace_overhead`` — the same runs with the observability layer
  attached (``trace=True``), reported as a ratio over the untraced
  time. Gated two ways: the ratio itself must stay under 1.20x (the
  batched ledger keeps attribution cheap when tracing is *on*), and
  the *untraced* path is gated against the checked-in baseline — the
  observability hooks are designed to be free when disabled, so
  tracing-disabled wall time must stay within 3% of the recorded
  ``after`` numbers.
* ``engine_dispatch`` — a multi-spec batch through the fault-tolerant
  per-future engine vs. a raw ``pool.map`` of the same batch, measured
  back to back in the same process. Gated: the engine's retry/timeout
  bookkeeping must keep dispatch within 3% of the ``pool.map``
  baseline.

Simulator results are merged into ``BENCH_runner.json`` under
``--label``; the compression sections are written to
``BENCH_compression.json`` and gated against the checked-in baseline —
the script exits nonzero if the sweep speedup drops below the 2x
acceptance floor or regresses more than 10% from the baseline. Refresh
the baseline intentionally with ``--update-baseline``.

    python scripts/bench_hot_paths.py --label after

Run with a warm process (no persistent cache, no memoized runs) so the
numbers reflect simulation cost, not cache hits.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import time

# The benchmark must measure real simulation work, never cache hits.
os.environ["REPRO_CACHE"] = "0"

from repro import design as designs  # noqa: E402
from repro.compression import make_algorithm  # noqa: E402
from repro.core.params import CabaParams  # noqa: E402
from repro.core.subroutines import SubroutineLibrary  # noqa: E402
from repro.gpu import soa as soa_mod  # noqa: E402
from repro.gpu.config import GPUConfig  # noqa: E402
from repro.gpu.sampling import SampleConfig  # noqa: E402
from repro.gpu.simulator import Simulator  # noqa: E402
from repro.harness import figures  # noqa: E402
from repro.harness.runner import (  # noqa: E402
    RunSpec,
    _make_caba_factory,
    build_image,
    clear_caches,
    geomean,
    run_app,
    run_spec,
)
from repro.workloads.apps import get_app  # noqa: E402
from repro.workloads.data_patterns import make_line_generator  # noqa: E402
from repro.workloads.tracegen import TraceScale, build_kernel  # noqa: E402

SWEEP_APPS = ("PVC", "MM", "CONS")
SWEEP_ALGORITHMS = ("bdi", "fpc", "cpack", "bestofall")


def bench_sim(repeats: int) -> dict:
    """End-to-end run_app wall time (the figure-harness unit of work)."""
    points = [("PVC", designs.caba("bdi")), ("MM", designs.base())]
    # Warm the shared line-info caches once so repeats measure the
    # simulator, not first-touch compression of the memory image.
    for app, point in points:
        run_app(app, point, use_cache=False)
    out = {}
    for app, point in points:
        best = float("inf")
        cycles = 0
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_app(app, point, use_cache=False)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            cycles = result.cycles
        out[f"{app}-{point.name}"] = {
            "seconds": round(best, 4),
            "cycles": cycles,
            "cycles_per_second": round(cycles / best),
        }
    return out


def bench_cycle_loop(repeats: int, work: float) -> dict:
    """Per-run simulator wall clock: SoA screen vs. reference scan.

    Unlike ``sim`` (which times the whole ``run_app`` harness on the
    small machine), this times ``Simulator.run()`` alone on the Table 1
    machine, flipping ``REPRO_SOA`` per run with the kernel, image and
    controller factory shared — the ratio isolates the vectorized core.
    The two legs are interleaved (reference, SoA, reference, ...) so
    machine noise lands on both equally, and each leg keeps its best of
    ``repeats``. Simulated cycle counts must match across modes (the
    byte-identity contract); a mismatch aborts the benchmark.
    """
    numpy_ok = soa_mod.np is not None
    points = [("PVC", designs.caba("bdi")), ("MM", designs.base())]
    config = GPUConfig()
    scale = TraceScale(work=work)
    modes = [("reference", "0")]
    if numpy_ok:
        modes.append(("soa", "1"))
    out: dict = {"scale_work": work, "numpy": numpy_ok, "points": {}}
    prior = os.environ.get("REPRO_SOA")
    try:
        for app_name, point in points:
            profile = get_app(app_name)
            image = build_image(profile, point, config, scale)
            kernel = build_kernel(profile, config, scale)
            factory, regs = _make_caba_factory(
                point, config, CabaParams(), plane=image.plane
            )

            def one_run(flag: str) -> tuple[float, int]:
                os.environ["REPRO_SOA"] = flag
                sim = Simulator(
                    config, kernel, point, image,
                    caba_factory=factory,
                    assist_regs_per_thread=regs,
                )
                start = time.perf_counter()
                result = sim.run()
                return time.perf_counter() - start, result.stats.cycles

            # Warm the shared per-line compression caches (first touch
            # of the image is compression work, not simulation).
            one_run(modes[-1][1])
            best = {name: float("inf") for name, _ in modes}
            cycles = {}
            for _ in range(repeats):
                for name, flag in modes:
                    elapsed, cyc = one_run(flag)
                    best[name] = min(best[name], elapsed)
                    cycles[name] = cyc
            if numpy_ok and cycles["soa"] != cycles["reference"]:
                raise AssertionError(
                    f"{app_name}-{point.name}: SoA and reference modes "
                    f"disagree on simulated cycles "
                    f"({cycles['soa']} vs {cycles['reference']})"
                )
            entry = {
                "cycles": cycles["reference"],
                "reference_seconds": round(best["reference"], 4),
            }
            if numpy_ok:
                entry["soa_seconds"] = round(best["soa"], 4)
                entry["speedup"] = round(
                    best["reference"] / best["soa"], 3
                )
            out["points"][f"{app_name}-{point.name}"] = entry
    finally:
        if prior is None:
            os.environ.pop("REPRO_SOA", None)
        else:
            os.environ["REPRO_SOA"] = prior
    if numpy_ok:
        out["speedup_geomean"] = round(
            geomean(e["speedup"] for e in out["points"].values()), 3
        )
    return out


def bench_cycle_loop_sampled(repeats: int) -> dict:
    """Sampled vs. exact ``Simulator.run()`` wall clock, with errors.

    Runs the ``cycle_loop`` benchmark points on the default machine
    (``GPUConfig.small()``) at full trace scale — the operating point
    the sampling engine is calibrated for (the full Table-1 machine is
    outside the certified matrix) — in exact mode and with the default
    :class:`SampleConfig` (10 % detail), sharing the kernel and image.
    Records the per-point speedup and the sampled run's relative error
    on IPC and bandwidth utilization; ``check_runner`` gates the
    speedup geomean at the 3x acceptance floor and the errors at the
    documented 2 % bound. Errors are deterministic (sampling has no
    randomness), so the error gate is exact; only the speedup side is
    subject to machine noise.
    """
    points = [("PVC", designs.caba("bdi")), ("MM", designs.base())]
    config = GPUConfig.small()
    scale = TraceScale()
    sample = SampleConfig()
    out: dict = {
        "scale_work": scale.work,
        "sample": f"{sample.warmup}:{sample.measure}:{sample.skip}",
        "detail_fraction": round(sample.detail_fraction, 4),
        "points": {},
    }
    for app_name, point in points:
        profile = get_app(app_name)
        image = build_image(profile, point, config, scale)
        kernel = build_kernel(profile, config, scale)
        factory = None
        regs = 0
        if point.uses_assist_warps:
            factory, regs = _make_caba_factory(
                point, config, CabaParams(), plane=image.plane
            )

        def one_run(sample_cfg):
            sim = Simulator(
                config, kernel, point, image,
                caba_factory=factory,
                assist_regs_per_thread=regs,
                sample=sample_cfg,
            )
            start = time.perf_counter()
            result = sim.run()
            return time.perf_counter() - start, result

        one_run(sample)  # warm the shared per-line compression caches
        modes = (("exact", None), ("sampled", sample))
        best = {name: float("inf") for name, _ in modes}
        results = {}
        for _ in range(repeats):
            for name, cfg in modes:
                elapsed, result = one_run(cfg)
                best[name] = min(best[name], elapsed)
                results[name] = result
        exact, sampled = results["exact"], results["sampled"]
        ipc_err = abs(sampled.ipc - exact.ipc) / exact.ipc
        bw_err = abs(
            sampled.bandwidth_utilization() - exact.bandwidth_utilization()
        ) / max(exact.bandwidth_utilization(), 1e-12)
        out["points"][f"{app_name}-{point.name}"] = {
            "exact_cycles": exact.cycles,
            "sampled_cycles": sampled.cycles,
            "exact_seconds": round(best["exact"], 4),
            "sampled_seconds": round(best["sampled"], 4),
            "speedup": round(best["exact"] / best["sampled"], 3),
            "ipc_err": round(ipc_err, 5),
            "bw_err": round(bw_err, 5),
        }
    out["speedup_geomean"] = round(
        geomean(e["speedup"] for e in out["points"].values()), 3
    )
    return out


def bench_trace_overhead(repeats: int) -> dict:
    """Traced re-runs of the ``sim`` points, as a ratio over untraced.

    The untraced side is re-measured here, interleaved with the traced
    runs, rather than reusing the ``sim`` section's numbers: the
    overhead gate is a same-machine-state ratio, and minutes can pass
    between sections — wall-clock drift would otherwise masquerade as
    tracing cost (the same reasoning behind ``bench_cycle_loop``'s
    interleaving). Each timed run gets a parked garbage collector
    (collect, then disable): traced runs allocate far more, and in a
    long-lived bench process the collector's gen-2 pauses — whose cost
    tracks process history, not this run — land disproportionately on
    the traced side and can double the apparent overhead."""
    points = [("PVC", designs.caba("bdi")), ("MM", designs.base())]
    out = {}

    def timed(**kwargs) -> float:
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            run_app(**kwargs)
            return time.perf_counter() - start
        finally:
            gc.enable()

    for app, point in points:
        untraced = traced = float("inf")
        ratios = []
        # The ratio sits near its budget, so it gets a deeper best-of
        # than the wall-clock sections regardless of --repeats. The
        # gated statistic is the BEST (minimum) of per-pair ratios —
        # the script's best-of-N convention applied to a ratio. Each
        # pair runs back to back so a machine-speed epoch mostly hits
        # both sides, and the cleanest pair approximates the noiseless
        # machine; best-traced/best-untraced across different epochs
        # was observed reporting 1.05x-1.4x for the same build on a
        # shared host. A real batching regression floors every pair,
        # so the minimum still catches it.
        for _ in range(max(repeats, 5)):
            u = timed(app=app, design=point, use_cache=False)
            t = timed(app=app, design=point, use_cache=False, trace=True)
            untraced = min(untraced, u)
            traced = min(traced, t)
            ratios.append(t / u)
        out[f"{app}-{point.name}"] = {
            "traced_seconds": round(traced, 4),
            "untraced_seconds": round(untraced, 4),
            "overhead": round(min(ratios), 3),
        }
    return out


def bench_engine_dispatch(repeats: int) -> dict:
    """Fault-tolerant per-future dispatch vs. raw ``pool.map``.

    Both paths run the identical cold spec batch on two workers; the
    ratio isolates the engine's submission/retry/timeout bookkeeping,
    since the simulation work is the same on either side.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.harness import parallel

    config = GPUConfig.small()
    scale = TraceScale(work=0.25)
    points = [designs.base(), designs.caba("bdi")]
    specs = [RunSpec(app, point, config, scale)
             for app in SWEEP_APPS for point in points]
    map_best = engine_best = float("inf")
    for _ in range(repeats):
        clear_caches()
        start = time.perf_counter()
        with ProcessPoolExecutor(max_workers=2) as pool:
            list(pool.map(parallel._worker_run, specs))
        map_best = min(map_best, time.perf_counter() - start)
    for _ in range(repeats):
        clear_caches()
        start = time.perf_counter()
        with parallel.ExperimentEngine(jobs=2, retries=0) as engine:
            engine.run_many(specs)
        engine_best = min(engine_best, time.perf_counter() - start)
    clear_caches()
    return {
        "specs": len(specs),
        "jobs": 2,
        "map_seconds": round(map_best, 4),
        "engine_seconds": round(engine_best, 4),
        "overhead": round(engine_best / map_best, 3),
    }


def check_runner(record: dict, baseline: dict) -> list[str]:
    """Gates: tracing-disabled sim time within 3% of the checked-in
    baseline (the observability layer must be free when off); per-future
    engine dispatch within 3% of the pool.map baseline; the SoA
    machinery must not regress the pure-Python cycle loop by more than
    3%; and, with numpy, the vectorized core must hold the 2x per-run
    speedup acceptance floor."""
    failures = []
    sim_record = record.get("sim", {})
    baseline_sim = baseline.get("sim", {})
    for key in sorted(set(sim_record) & set(baseline_sim)):
        now = sim_record[key]["seconds"]
        base = baseline_sim[key]["seconds"]
        if now > 1.03 * base:
            failures.append(
                f"{key} tracing-disabled time {now:.3f}s exceeds 3% "
                f"budget over baseline {base:.3f}s "
                f"({now / base - 1:+.1%})"
            )
    dispatch = record.get("engine_dispatch", {})
    if dispatch and dispatch["overhead"] > 1.03:
        failures.append(
            f"engine dispatch {dispatch['engine_seconds']:.3f}s exceeds "
            f"3% budget over pool.map {dispatch['map_seconds']:.3f}s "
            f"({dispatch['overhead'] - 1:+.1%})"
        )
    cyc = record.get("cycle_loop", {})
    base_points = baseline.get("cycle_loop", {}).get("points", {})
    for key, entry in sorted(cyc.get("points", {}).items()):
        base = base_points.get(key)
        if base and entry["reference_seconds"] > 1.03 * base["reference_seconds"]:
            failures.append(
                f"{key} pure-path cycle loop "
                f"{entry['reference_seconds']:.3f}s exceeds 3% budget "
                f"over baseline {base['reference_seconds']:.3f}s "
                f"({entry['reference_seconds'] / base['reference_seconds'] - 1:+.1%})"
            )
    if cyc.get("numpy"):
        gm = cyc.get("speedup_geomean", 0.0)
        if gm < 2.0:
            failures.append(
                f"SoA per-run speedup geomean {gm:.2f}x is below the "
                f"2.0x acceptance floor"
            )
    trace = record.get("trace_overhead", {})
    for key, entry in sorted(trace.items()):
        if entry["overhead"] > 1.20:
            failures.append(
                f"{key} tracing overhead {entry['overhead']:.2f}x "
                f"exceeds the 1.20x budget (batched ledger flushes "
                f"should keep attribution cheap)"
            )
    samp = record.get("cycle_loop_sampled", {})
    if samp:
        gm = samp.get("speedup_geomean", 0.0)
        if gm < 3.0:
            failures.append(
                f"sampled-mode speedup geomean {gm:.2f}x is below the "
                f"3.0x acceptance floor"
            )
        for key, entry in sorted(samp.get("points", {}).items()):
            for metric in ("ipc_err", "bw_err"):
                if entry[metric] > 0.02:
                    failures.append(
                        f"{key} sampled {metric} {entry[metric]:.2%} "
                        f"exceeds the 2% error bound"
                    )
    return failures


def bench_bdi(lines: int, repeats: int) -> dict:
    """BDI compress+decompress round trips over real app data."""
    line_size = 128
    bdi = make_algorithm("bdi", line_size)
    gen = make_line_generator(get_app("PVC").data, line_size, seed=7)
    payloads = [gen(i) for i in range(lines)]
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for data in payloads:
            compressed = bdi.compress(data)
            bdi.decompress(compressed)
        best = min(best, time.perf_counter() - start)
    return {
        "lines": lines,
        "seconds": round(best, 4),
        "lines_per_second": round(lines / best),
    }


def bench_subroutines(repeats: int) -> dict:
    """Cost of building every assist program a CABA-BDI run needs."""
    encodings = ("ZEROS", "REPEAT", "B8D1", "B8D2", "B4D1")
    iterations = 2000
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            library = SubroutineLibrary(line_size=128)
            library.compression("bdi")
            for encoding in encodings:
                library.decompression("bdi", encoding)
        best = min(best, time.perf_counter() - start)
    return {
        "library_builds": iterations,
        "seconds": round(best, 4),
        "builds_per_second": round(iterations / best),
    }


def bench_plane_build(lines: int, repeats: int) -> dict:
    """Batch ``size_table`` kernels vs. the scalar compress loop."""
    line_size = 128
    gen = make_line_generator(get_app("PVC").data, line_size, seed=7)
    payloads = [gen(i) for i in range(lines)]
    out = {}
    for name in ("bdi", "fpc", "cpack", "fvc"):
        algo = make_algorithm(name, line_size)
        scalar = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for data in payloads:
                algo.compress(data)
            scalar = min(scalar, time.perf_counter() - start)
        batched = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            algo.size_table(payloads)
            batched = min(batched, time.perf_counter() - start)
        out[name] = {
            "lines": lines,
            "scalar_seconds": round(scalar, 4),
            "batch_seconds": round(batched, 4),
            "speedup": round(scalar / batched, 2),
        }
    return out


def _figure_sweep_once() -> float:
    """One cold multi-design sweep plus the Fig. 11 compression study."""
    config = GPUConfig.small()
    scale = TraceScale(work=0.25, waves=0.25)
    points = [designs.base()]
    points += [designs.caba(algo) for algo in SWEEP_ALGORITHMS]
    start = time.perf_counter()
    for app in SWEEP_APPS:
        for point in points:
            run_spec(RunSpec(app, point, config, scale), use_cache=False)
    figures.fig11_compression_ratio(apps=SWEEP_APPS, sample_lines=1600)
    return time.perf_counter() - start


def bench_figure_sweep() -> dict:
    """Cold figure sweep with compression planes off, then on."""
    prior = os.environ.get("REPRO_PLANES")
    out = {}
    try:
        for mode, flag in (("planes_off", "0"), ("planes_on", "1")):
            os.environ["REPRO_PLANES"] = flag
            clear_caches()
            out[mode] = {"seconds": round(_figure_sweep_once(), 4)}
    finally:
        if prior is None:
            os.environ.pop("REPRO_PLANES", None)
        else:
            os.environ["REPRO_PLANES"] = prior
        clear_caches()
    out["speedup"] = round(
        out["planes_off"]["seconds"] / out["planes_on"]["seconds"], 3
    )
    return out


def check_compression(record: dict, baseline: dict) -> list[str]:
    """Regression gates for the compression benchmarks."""
    failures = []
    sweep = record["figure_sweep"]["speedup"]
    if sweep < 2.0:
        failures.append(
            f"figure-sweep plane speedup {sweep:.2f}x is below the "
            f"2.0x acceptance floor"
        )
    if not baseline:
        return failures
    base_sweep = baseline.get("figure_sweep", {}).get("speedup")
    if base_sweep and sweep < 0.9 * base_sweep:
        failures.append(
            f"figure-sweep speedup regressed >10%: "
            f"{sweep:.2f}x vs baseline {base_sweep:.2f}x"
        )
    for name, entry in record["plane_build"].items():
        base = baseline.get("plane_build", {}).get(name)
        if base and entry["speedup"] < 0.9 * base["speedup"]:
            failures.append(
                f"{name} batch-kernel speedup regressed >10%: "
                f"{entry['speedup']:.2f}x vs baseline "
                f"{base['speedup']:.2f}x"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="after",
                        help="record name in BENCH_runner.json")
    parser.add_argument("--out", default="BENCH_runner.json")
    parser.add_argument("--comp-out", default="BENCH_compression.json")
    parser.add_argument("--section",
                        choices=("all", "runner", "cycle_loop",
                                 "cycle_loop_sampled", "compression"),
                        default="all")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the compression baseline record")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--cycle-work", type=float, default=0.5,
                        help="TraceScale.work for the cycle_loop section")
    parser.add_argument("--bdi-lines", type=int, default=4000)
    parser.add_argument("--plane-lines", type=int, default=4000)
    args = parser.parse_args()

    status = 0
    if args.section in ("all", "runner", "cycle_loop",
                        "cycle_loop_sampled"):
        clear_caches()
        merged = {}
        if os.path.exists(args.out):
            with open(args.out) as fh:
                merged = json.load(fh)
        # Grab the previously checked-in numbers before overwriting the
        # label — they are the reference for the regression gates.
        baseline = merged.get(args.label, {})
        if args.section in ("cycle_loop", "cycle_loop_sampled"):
            # Refresh only the requested section in place.
            record = dict(baseline)
            record["python"] = platform.python_version()
        else:
            sim = bench_sim(args.repeats)
            record = {
                "python": platform.python_version(),
                "sim": sim,
                "trace_overhead": bench_trace_overhead(args.repeats),
                "bdi": bench_bdi(args.bdi_lines, args.repeats),
                "subroutines": bench_subroutines(args.repeats),
                "engine_dispatch": bench_engine_dispatch(args.repeats),
            }
        if args.section != "cycle_loop_sampled":
            record["cycle_loop"] = bench_cycle_loop(
                args.repeats, args.cycle_work
            )
        if args.section != "cycle_loop":
            record["cycle_loop_sampled"] = bench_cycle_loop_sampled(
                args.repeats
            )
        merged[args.label] = record

        before = merged.get("before", {}).get("sim", {})
        after = merged.get("after", {}).get("sim", {})
        for key in sorted(set(before) & set(after)):
            speedup = before[key]["seconds"] / after[key]["seconds"]
            merged.setdefault("speedup", {})[key] = round(speedup, 3)

        with open(args.out, "w") as fh:
            json.dump(merged, fh, indent=2)
            fh.write("\n")
        print(json.dumps(record, indent=2))
        print(f"wrote {args.out} [{args.label}]")

        runner_failures = check_runner(record, baseline)
        for failure in runner_failures:
            print(f"REGRESSION: {failure}")
        if runner_failures:
            status = 1

    if args.section in ("all", "compression"):
        try:
            from repro.compression import batch
            numpy_backend = batch.np is not None
        except ImportError:  # pragma: no cover
            numpy_backend = False
        clear_caches()
        comp = {
            "python": platform.python_version(),
            "numpy_backend": numpy_backend,
            "plane_build": bench_plane_build(args.plane_lines, args.repeats),
            "figure_sweep": bench_figure_sweep(),
        }

        stored = {}
        if os.path.exists(args.comp_out):
            with open(args.comp_out) as fh:
                stored = json.load(fh)
        if args.update_baseline or "baseline" not in stored:
            stored["baseline"] = comp
        stored["latest"] = comp
        with open(args.comp_out, "w") as fh:
            json.dump(stored, fh, indent=2)
            fh.write("\n")
        print(json.dumps(comp, indent=2))
        print(f"wrote {args.comp_out}")

        failures = check_compression(comp, stored["baseline"])
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            status = 1
    return status


if __name__ == "__main__":
    import sys

    sys.exit(main())
