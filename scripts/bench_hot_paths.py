#!/usr/bin/env python3
"""Microbenchmarks for the simulator and compressor hot paths.

Measures the three paths the perf work targets:

* ``sim`` — end-to-end `run_app` wall time and simulated cycles per
  second for a memory-bound CABA run and a compute-leaning Base run.
* ``bdi`` — BDI compress+decompress round-trip throughput over
  generated application lines (the byte-level inner loop).
* ``subroutines`` — assist-warp subroutine construction cost (the
  per-run `SubroutineLibrary` path).

Results are merged into ``BENCH_runner.json`` under ``--label`` so the
perf trajectory (before/after records) is tracked in-repo:

    python scripts/bench_hot_paths.py --label after

Run with a warm process (no persistent cache, no memoized runs) so the
numbers reflect simulation cost, not cache hits.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

# The benchmark must measure real simulation work, never cache hits.
os.environ["REPRO_CACHE"] = "0"

from repro import design as designs  # noqa: E402
from repro.compression import make_algorithm  # noqa: E402
from repro.core.subroutines import SubroutineLibrary  # noqa: E402
from repro.harness.runner import clear_caches, run_app  # noqa: E402
from repro.workloads.apps import get_app  # noqa: E402
from repro.workloads.data_patterns import make_line_generator  # noqa: E402


def bench_sim(repeats: int) -> dict:
    """End-to-end run_app wall time (the figure-harness unit of work)."""
    points = [("PVC", designs.caba("bdi")), ("MM", designs.base())]
    # Warm the shared line-info caches once so repeats measure the
    # simulator, not first-touch compression of the memory image.
    for app, point in points:
        run_app(app, point, use_cache=False)
    out = {}
    for app, point in points:
        best = float("inf")
        cycles = 0
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_app(app, point, use_cache=False)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            cycles = result.cycles
        out[f"{app}-{point.name}"] = {
            "seconds": round(best, 4),
            "cycles": cycles,
            "cycles_per_second": round(cycles / best),
        }
    return out


def bench_bdi(lines: int, repeats: int) -> dict:
    """BDI compress+decompress round trips over real app data."""
    line_size = 128
    bdi = make_algorithm("bdi", line_size)
    gen = make_line_generator(get_app("PVC").data, line_size, seed=7)
    payloads = [gen(i) for i in range(lines)]
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for data in payloads:
            compressed = bdi.compress(data)
            bdi.decompress(compressed)
        best = min(best, time.perf_counter() - start)
    return {
        "lines": lines,
        "seconds": round(best, 4),
        "lines_per_second": round(lines / best),
    }


def bench_subroutines(repeats: int) -> dict:
    """Cost of building every assist program a CABA-BDI run needs."""
    encodings = ("ZEROS", "REPEAT", "B8D1", "B8D2", "B4D1")
    iterations = 2000
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            library = SubroutineLibrary(line_size=128)
            library.compression("bdi")
            for encoding in encodings:
                library.decompression("bdi", encoding)
        best = min(best, time.perf_counter() - start)
    return {
        "library_builds": iterations,
        "seconds": round(best, 4),
        "builds_per_second": round(iterations / best),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="after",
                        help="record name in BENCH_runner.json")
    parser.add_argument("--out", default="BENCH_runner.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--bdi-lines", type=int, default=4000)
    args = parser.parse_args()

    clear_caches()
    record = {
        "python": platform.python_version(),
        "sim": bench_sim(args.repeats),
        "bdi": bench_bdi(args.bdi_lines, args.repeats),
        "subroutines": bench_subroutines(args.repeats),
    }

    merged = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            merged = json.load(fh)
    merged[args.label] = record

    before = merged.get("before", {}).get("sim", {})
    after = merged.get("after", {}).get("sim", {})
    for key in sorted(set(before) & set(after)):
        speedup = before[key]["seconds"] / after[key]["seconds"]
        merged.setdefault("speedup", {})[key] = round(speedup, 3)

    with open(args.out, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out} [{args.label}]")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
