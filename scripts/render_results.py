#!/usr/bin/env python3
"""Render a saved experiment JSON (from run_experiments.py --out) as
markdown tables and ASCII bar charts.

Usage:
    python scripts/render_results.py results_small.json [--bars fig7:CABA-BDI]
"""

from __future__ import annotations

import argparse
import json
import sys


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_markdown(entry: dict) -> str:
    columns = entry["columns"]
    lines = [f"### {entry['title']}", ""]
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "---|" * len(columns))
    for row in entry["rows"]:
        lines.append(
            "| " + " | ".join(_fmt(row.get(c, "")) for c in columns) + " |"
        )
    if entry.get("summary"):
        lines.append("")
        for key, value in entry["summary"].items():
            lines.append(f"- `{key}` = {_fmt(value)}")
    return "\n".join(lines)


def render_bar(entry: dict, column: str, width: int = 40) -> str:
    rows = [r for r in entry["rows"] if column in r]
    if not rows:
        return f"(no column {column!r} in {entry['title']})"
    label_key = entry["columns"][0]
    peak = max(float(r[column]) for r in rows) or 1.0
    lines = [f"{entry['title']} — {column}"]
    for row in rows:
        value = float(row[column])
        lines.append(
            f"  {str(row[label_key]):>10s} "
            f"{'#' * int(round(width * value / peak)):<{width}s} {value:.3f}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path")
    parser.add_argument("--only", default=None,
                        help="comma-separated experiment ids")
    parser.add_argument("--bars", default=None,
                        help="id:column pairs to render as bar charts, "
                             "comma-separated")
    args = parser.parse_args(argv)

    with open(args.json_path) as fh:
        dump = json.load(fh)
    wanted = set(args.only.split(",")) if args.only else None

    for key, entry in dump.items():
        if not isinstance(entry, dict) or "rows" not in entry:
            continue
        if wanted is not None and key not in wanted:
            continue
        print(render_markdown(entry))
        print()

    if args.bars:
        for pair in args.bars.split(","):
            exp_id, _, column = pair.partition(":")
            entry = dump.get(exp_id)
            if not isinstance(entry, dict):
                print(f"(unknown experiment {exp_id!r})", file=sys.stderr)
                continue
            print(render_bar(entry, column))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
