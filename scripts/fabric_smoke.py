#!/usr/bin/env python
"""CI smoke for the distributed sweep fabric: real processes, one kill.

Starts an in-process coordinator (fabric-mode sweep server, ephemeral
port) plus two real ``repro worker`` subprocesses over HTTP, then:

1. runs the reference sweep single-node and keeps its result bytes,
2. submits the same sweep to the fabric against a fresh cache; worker
   one is started with the hidden ``--stall-after 0`` failure hook, so
   it grabs a lease and then hangs without heartbeating — and is then
   SIGKILLed mid-sweep,
3. asserts the coordinator expires the dead worker's lease, re-leases
   its specs to the survivor, and completes the job with result bytes
   **byte-identical** to the single-node run — with every simulation
   run remotely (zero in the coordinator process) and none duplicated.

Exit status is the verdict; every step prints what it proved.
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.harness import runner  # noqa: E402
from repro.harness.parallel import ExperimentEngine  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.fabric import FabricConfig, FabricCoordinator  # noqa: E402
from repro.service.jobs import JobStore  # noqa: E402
from repro.service.server import ServiceConfig, SweepServer  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_until(predicate, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() > deadline:
            fail(f"timed out waiting for {what}")
        time.sleep(0.1)


def spawn_worker(url: str, name: str, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--url", url,
         "--name", name, "--lease-specs", "1", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", nargs="+", default=["MM"])
    parser.add_argument("--designs", nargs="+", default=["base", "caba"])
    parser.add_argument("--lease-ttl", type=float, default=2.0,
                        help="coordinator lease TTL (short, so the "
                             "killed worker's lease expires quickly)")
    args = parser.parse_args()
    sweep = {"sweep": {"apps": args.apps, "designs": args.designs}}
    n_specs = len(args.apps) * len(args.designs)

    # --- 1. single-node reference -------------------------------------
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="fab-single-")
    runner.clear_caches()
    store = JobStore(engine=ExperimentEngine(jobs=1))
    server = SweepServer(store, ServiceConfig(host="127.0.0.1", port=0))
    host, port = server.start_background()
    client = ServiceClient(f"http://{host}:{port}", tenant="reference")
    before = runner.simulation_count()
    accepted = client.submit(sweep)
    final = client.wait(accepted["job"], timeout=600.0)
    if final["status"] != "done":
        fail(f"reference sweep ended {final['status']}")
    reference_bytes = client.result_bytes(accepted["job"])
    reference_sims = runner.simulation_count() - before
    server.stop()
    store.close()
    print(f"step 1 ok: single-node reference ran {reference_sims} "
          f"simulations, {len(reference_bytes)} result bytes")

    # --- 2. the same sweep through the fabric, fresh cache ------------
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="fab-coord-")
    runner.clear_caches()
    coordinator = FabricCoordinator(FabricConfig(
        lease_ttl=args.lease_ttl, lease_specs=1, retries=5, poll=0.2))
    store = JobStore(engine=coordinator)
    server = SweepServer(store, ServiceConfig(host="127.0.0.1", port=0))
    host, port = server.start_background()
    url = f"http://{host}:{port}"
    print(f"coordinator: {url} (lease ttl {args.lease_ttl:g}s)")

    doomed = survivor = None
    try:
        client = ServiceClient(url, tenant="fabric")
        before = runner.simulation_count()
        accepted = client.submit(sweep)

        # The doomed worker leases one spec, stalls without ever
        # heartbeating or completing, and gets SIGKILLed mid-sweep.
        doomed = spawn_worker(url, "doomed", "--stall-after", "0")
        wait_until(
            lambda: client.stats()["fabric"]["leases_granted"] >= 1,
            60.0, "the doomed worker to take a lease")
        survivor = spawn_worker(url, "survivor", "--max-idle", "5.0")
        doomed.send_signal(signal.SIGKILL)
        doomed.wait(timeout=30.0)
        print("step 2 ok: doomed worker leased a spec and was killed "
              "mid-sweep (no heartbeat, no completion)")

        # --- 3. recovery: lease expiry -> re-lease -> completion ------
        final = client.wait(accepted["job"], timeout=600.0)
        if final["status"] != "done":
            fail(f"fabric sweep ended {final['status']}: {final}")
        fabric = client.stats()["fabric"]
        local_sims = runner.simulation_count() - before
        if local_sims != 0:
            fail(f"coordinator simulated {local_sims} specs locally; "
                 "fabric mode must run everything remotely")
        if fabric["leases_expired"] < 1:
            fail("the dead worker's lease never expired")
        if fabric["specs_requeued"] < 1:
            fail("the dead worker's specs were never requeued")
        if fabric["remote_simulated"] != n_specs:
            fail(f"workers simulated {fabric['remote_simulated']} specs, "
                 f"expected {n_specs} (duplicate or missing work)")
        fabric_bytes = client.result_bytes(accepted["job"])
        if fabric_bytes != reference_bytes:
            fail("fabric result bytes differ from the single-node run")
        print(f"step 3 ok: lease expired and recovered, survivor "
              f"completed all {n_specs} specs "
              f"({fabric['remote_simulated']} simulated remotely, "
              f"0 locally), results byte-identical")

        survivor.wait(timeout=60.0)
        if survivor.returncode != 0:
            print(survivor.stdout.read(), file=sys.stderr)
            fail(f"survivor worker exited {survivor.returncode}")
        print("step 4 ok: survivor drained, went idle, exited cleanly")
    finally:
        for proc in (doomed, survivor):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
        server.stop()
        store.close()

    print("fabric smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
