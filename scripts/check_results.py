#!/usr/bin/env python3
"""Validate a saved experiment JSON against the paper's headline shapes.

A CI-style gate: run the experiment matrix, then check that the saved
results still reproduce the qualitative claims (design ordering,
direction of every trend). Exits non-zero and lists the violated checks
otherwise.

Usage:
    python scripts/run_experiments.py --config small --out results.json
    python scripts/check_results.py results.json
"""

from __future__ import annotations

import argparse
import json
import sys


class Checker:
    def __init__(self) -> None:
        self.failures: list[str] = []
        self.passed = 0

    def check(self, label: str, condition: bool) -> None:
        if condition:
            self.passed += 1
        else:
            self.failures.append(label)

    def report(self) -> int:
        print(f"{self.passed} checks passed, {len(self.failures)} failed")
        for failure in self.failures:
            print(f"  FAIL: {failure}")
        return 1 if self.failures else 0


def validate(dump: dict) -> int:
    c = Checker()

    fig7 = dump.get("fig7", {}).get("summary", {})
    if fig7:
        base = fig7.get("geomean_Base", 0)
        hw_mem = fig7.get("geomean_HW-BDI-Mem", 0)
        hw = fig7.get("geomean_HW-BDI", 0)
        caba = fig7.get("geomean_CABA-BDI", 0)
        ideal = fig7.get("geomean_Ideal-BDI", 0)
        c.check("fig7: every compressed design beats Base",
                min(hw_mem, hw, caba, ideal) > base)
        c.check("fig7: CABA within 15% of Ideal", caba >= 0.85 * ideal)
        c.check("fig7: CABA above HW-BDI-Mem", caba > hw_mem)
        c.check("fig7: CABA within 15% of HW-BDI",
                abs(caba - hw) / hw < 0.15 if hw else False)
        c.check("fig7: meaningful speedup (>1.15)", caba > 1.15)

    fig8 = dump.get("fig8", {}).get("summary", {})
    if fig8:
        c.check("fig8: CABA lowers average utilization",
                fig8.get("avg_CABA-BDI", 1) < fig8.get("avg_Base", 0))

    fig9 = dump.get("fig9", {}).get("summary", {})
    if fig9:
        c.check("fig9: CABA saves energy", fig9.get("avg_CABA-BDI", 1) < 0.95)
        c.check("fig9: CABA >= Ideal energy",
                fig9.get("avg_CABA-BDI", 0)
                >= fig9.get("avg_Ideal-BDI", 1) - 0.02)
        c.check("fig9: DRAM energy drops >15%",
                fig9.get("avg_dram_energy_reduction", 0) > 0.15)

    fig10 = dump.get("fig10", {}).get("summary", {})
    if fig10:
        fpc = fig10.get("geomean_CABA-FPC", 0)
        bdi = fig10.get("geomean_CABA-BDI", 0)
        cpack = fig10.get("geomean_CABA-CPack", 0)
        c.check("fig10: every algorithm >= 1.0",
                min(fpc, bdi, cpack) >= 1.0)
        c.check("fig10: BDI is the best single algorithm",
                bdi >= max(fpc, cpack))

    fig11 = dump.get("fig11", {})
    if fig11.get("rows"):
        by_app = {row["app"]: row for row in fig11["rows"]}
        for app in ("MM", "PVC", "PVR"):
            if app in by_app:
                c.check(f"fig11: {app} favours BDI",
                        by_app[app]["BDI"] > by_app[app]["FPC"])
        for row in fig11["rows"]:
            c.check(f"fig11: BestOfAll envelope on {row['app']}",
                    row["BESTOFALL"] >= max(
                        row["BDI"], row["FPC"], row["CPACK"]) - 1e-9)

    fig12 = dump.get("fig12", {}).get("summary", {})
    if fig12:
        for scale in ("1/2x", "1x", "2x"):
            c.check(f"fig12: CABA beats Base at {scale}",
                    fig12.get(f"geomean_{scale}-CABA", 0)
                    > fig12.get(f"geomean_{scale}-Base", 1))
        c.check("fig12: 1x-CABA approaches 2x-Base",
                fig12.get("geomean_1x-CABA", 0)
                > 0.7 * fig12.get("geomean_2x-Base", 1))

    fig13 = dump.get("fig13", {})
    if fig13.get("rows"):
        l1 = [row["CABA-L1-2x"] for row in fig13["rows"]]
        l2 = [row["CABA-L2-4x"] for row in fig13["rows"]]
        c.check("fig13: L1 compression hurts someone", min(l1) < 1.0)
        c.check("fig13: L2 capacity helps someone", max(l2) > 1.0)

    md = dump.get("mdcache", {}).get("summary", {})
    if md:
        c.check("mdcache: high average hit rate",
                md.get("average_hit_rate", 0) > 0.75)

    fig2 = dump.get("fig2", {}).get("summary", {})
    if fig2:
        c.check("fig2: unallocated registers in the paper's range",
                0.10 <= fig2.get("average_unallocated", 0) <= 0.40)

    memo = dump.get("memo", {})
    if memo.get("rows"):
        speedups = [row["speedup"] for row in memo["rows"]]
        c.check("memo: benefit grows with redundancy",
                speedups == sorted(speedups))

    return c.report()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path")
    args = parser.parse_args(argv)
    with open(args.json_path) as fh:
        dump = json.load(fh)
    return validate(dump)


if __name__ == "__main__":
    sys.exit(main())
