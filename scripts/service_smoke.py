#!/usr/bin/env python
"""CI smoke for the sweep service: dedup and quotas over real HTTP.

Starts an in-process server (real sockets, ephemeral port), then:

1. tenant A submits a small sweep and waits for results,
2. tenant B resubmits the identical sweep — must be served from the
   content-addressed cache with **zero additional simulator
   invocations** (checked against the runner's run-count hook) and
   byte-for-byte identical result bytes,
3. tenant C provokes exactly one rate-limit rejection — which must be
   a structured 429 and must not disturb anyone else's results.

Exit status is the verdict; every step prints what it proved. Runs on
both CI legs (with and without numpy) — the service layer itself is
pure stdlib, so this mainly proves the harness underneath behaves the
same way in both configurations.
"""

import argparse
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro.harness import runner  # noqa: E402
from repro.harness.parallel import ExperimentEngine  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402
from repro.service.jobs import JobStore  # noqa: E402
from repro.service.quota import QuotaLimits  # noqa: E402
from repro.service.server import ServiceConfig, SweepServer  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", nargs="+", default=["MM"])
    parser.add_argument("--designs", nargs="+", default=["base", "caba"])
    args = parser.parse_args()

    # Hermetic cache: the zero-new-simulations assertion must not be
    # satisfied by entries from an earlier run of this very script.
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="svc-smoke-")
    runner.clear_caches()

    # Eight decimal zeros of rate: each tenant effectively gets exactly
    # its one burst token, making the rejection in step 3 deterministic.
    store = JobStore(
        engine=ExperimentEngine(jobs=1),
        limits=QuotaLimits(rate=1e-8, burst=1.0,
                           max_queued_jobs=10, max_inflight_specs=100),
    )
    server = SweepServer(store, ServiceConfig(host="127.0.0.1", port=0))
    host, port = server.start_background()
    url = f"http://{host}:{port}"
    print(f"server: {url}")
    sweep = {"sweep": {"apps": args.apps, "designs": args.designs}}
    n_specs = len(args.apps) * len(args.designs)

    try:
        # --- 1. first submission simulates -------------------------------
        alice = ServiceClient(url, tenant="smoke-a")
        before = runner.simulation_count()
        accepted = alice.submit(sweep)
        final = alice.wait(accepted["job"], timeout=600.0)
        if final["status"] != "done":
            fail(f"first sweep ended {final['status']}: "
                 f"{final['failures']}")
        first_sims = runner.simulation_count() - before
        if first_sims != n_specs:
            fail(f"first sweep ran {first_sims} simulations, "
                 f"expected {n_specs}")
        alice_bytes = alice.result_bytes(accepted["job"])
        print(f"step 1 ok: sweep of {n_specs} specs simulated "
              f"{first_sims} times, job {accepted['job']} done")

        # --- 2. identical resubmission costs zero simulations ------------
        bob = ServiceClient(url, tenant="smoke-b")
        before = runner.simulation_count()
        dedup = bob.submit(sweep)
        if dedup["served_from"] not in ("cache", "coalesced"):
            fail(f"resubmission was served from {dedup['served_from']!r}")
        bob.wait(dedup["job"], timeout=60.0)
        extra = runner.simulation_count() - before
        if extra != 0:
            fail(f"resubmission ran {extra} extra simulations")
        bob_bytes = bob.result_bytes(dedup["job"])
        if alice_bytes != bob_bytes:
            fail("second tenant's result bytes differ from the first's")
        print(f"step 2 ok: resubmission served from "
              f"{dedup['served_from']}, 0 new simulations, "
              f"{len(bob_bytes)} result bytes byte-identical")

        # --- 3. one rate-limit rejection, nobody disturbed ---------------
        carol = ServiceClient(url, tenant="smoke-c")
        carol.submit(sweep)  # burns carol's single burst token
        try:
            carol.submit(sweep)
        except ServiceError as exc:
            if exc.status != 429 or exc.code != "rate-limited":
                fail(f"expected a structured 429 rate-limited, got "
                     f"HTTP {exc.status} [{exc.code}]")
            print(f"step 3 ok: rejection is structured "
                  f"(HTTP {exc.status}, code={exc.code}, "
                  f"retry_after={exc.retry_after:.0f}s)")
        else:
            fail("second submission in the same second was not "
                 "rate-limited")
        if alice.result_bytes(accepted["job"]) != alice_bytes:
            fail("rate-limited tenant disturbed another tenant's results")

        stats = alice.stats()
        print(f"stats: {stats['jobs']} jobs, served_from="
              f"{stats['served_from']}, "
              f"{stats['simulations']} simulations, "
              f"rejected={stats['tenants']['smoke-c']['rejected']}")
        if stats["tenants"]["smoke-c"]["rejected"] != 1:
            fail("expected exactly one recorded rejection")
    finally:
        server.stop()
        store.close()

    print("service smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
