#!/usr/bin/env python3
"""Regenerate every paper table/figure and emit the EXPERIMENTS.md data.

Runs the full experiment matrix (all applications in each study) on the
chosen machine configuration and prints each reproduced figure as a
text table, plus a machine-readable JSON dump.

Usage:
    python scripts/run_experiments.py [--config small|medium|full]
                                      [--out results.json]
                                      [--only fig7,fig8,...]
                                      [--jobs N] [--retries N]
                                      [--timeout SECONDS]

``--jobs N`` (or ``REPRO_JOBS=N``) fans the simulation matrix out over
N worker processes; results are identical to a serial run. Completed
runs are persisted in the on-disk cache (``REPRO_CACHE_DIR``), so
re-invocations skip simulation entirely.

Execution is fault tolerant: failed runs retry (``--retries`` /
``REPRO_RETRIES``), hung workers are cancelled after ``--timeout`` /
``REPRO_RUN_TIMEOUT`` seconds, and an experiment whose batch still has
failures is reported (with the per-spec failure list) while the
remaining experiments keep running; the script then exits non-zero.
Completed sibling runs stay checkpointed, so a rerun only redoes the
failures.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.gpu.config import GPUConfig
from repro.harness import figures, parallel
from repro.harness.extensions import (
    ablation_study,
    capacity_study,
    md_cache_sweep,
    memoization_study,
    prefetch_study,
    scheduler_study,
)
from repro.harness.report import render_table

CONFIGS = {
    "small": GPUConfig.small,
    "medium": GPUConfig.medium,
    "full": GPUConfig,
}


def experiment_matrix(config: GPUConfig):
    """(name, thunk) for every experiment, in paper order."""
    return [
        ("tab1", lambda: figures.tab1_system_config()),
        ("fig1", lambda: figures.fig1_cycle_breakdown(config)),
        ("fig2", lambda: figures.fig2_unallocated_registers()),
        ("fig5", lambda: figures.fig5_bdi_example()),
        ("fig7", lambda: figures.fig7_performance(config)),
        ("fig8", lambda: figures.fig8_bandwidth(config)),
        ("fig9", lambda: figures.fig9_energy(config)),
        ("fig10", lambda: figures.fig10_algorithms(config)),
        ("fig11", lambda: figures.fig11_compression_ratio()),
        ("fig12", lambda: figures.fig12_bw_sensitivity(config)),
        ("fig13", lambda: figures.fig13_cache_compression(config)),
        ("mdcache", lambda: figures.md_cache_study(config)),
        ("memo", lambda: memoization_study(config)),
        ("prefetch", lambda: prefetch_study(config)),
        ("capacity", lambda: capacity_study(config)),
        ("ablations", lambda: ablation_study(config)),
        ("scheduler", lambda: scheduler_study(config)),
        ("mdsweep", lambda: md_cache_sweep(config)),
    ]


def _jobs_arg(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--config", choices=sorted(CONFIGS), default="small")
    parser.add_argument("--out", default=None, help="JSON output path")
    parser.add_argument("--only", default=None,
                        help="comma-separated experiment ids")
    parser.add_argument("--jobs", type=_jobs_arg, default=None,
                        help="simulation worker processes "
                             "(default: REPRO_JOBS or 1)")
    parser.add_argument("--retries", type=int, default=None,
                        help="retry budget per failed run "
                             "(default: REPRO_RETRIES or 1)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-run wall-clock timeout in seconds "
                             "(default: REPRO_RUN_TIMEOUT; 0 disables)")
    parser.add_argument("--verify", action="store_true",
                        help="run the quick differential correctness "
                             "harness (repro check --quick) before any "
                             "experiment; abort if it fails")
    args = parser.parse_args()

    if args.verify:
        from repro.verify import run_checks

        report = run_checks(lines=32, apps=("PVC",))
        print(report.render())
        sys.stdout.flush()
        if not report.ok:
            print("verification failed; not running experiments",
                  file=sys.stderr)
            return 1

    engine = parallel.configure(jobs=args.jobs, retries=args.retries,
                                timeout=args.timeout)
    config = CONFIGS[args.config]()
    wanted = set(args.only.split(",")) if args.only else None
    dump = {"config": args.config, "jobs": engine.jobs}
    failed: dict[str, parallel.ExperimentFailure] = {}

    # The worker pool must come down on every exit path — an exception
    # or Ctrl-C mid-experiment must not leave orphaned workers behind.
    try:
        for name, thunk in experiment_matrix(config):
            if wanted is not None and name not in wanted:
                continue
            start = time.time()
            try:
                result = thunk()
            except parallel.ExperimentFailure as exc:
                # Completed sibling runs of this experiment are already
                # checkpointed; report, keep going with the rest.
                elapsed = time.time() - start
                print(f"\n[{name} FAILED after {elapsed:.1f}s]")
                print(exc)
                sys.stdout.flush()
                failed[name] = exc
                dump[name] = {
                    "failed": True,
                    "failures": [f.describe() for f in exc.failures],
                    "seconds": round(elapsed, 1),
                }
                continue
            elapsed = time.time() - start
            print()
            print(render_table(result))
            print(f"[{name} took {elapsed:.1f}s]")
            sys.stdout.flush()
            dump[name] = {
                "title": result.title,
                "columns": result.columns,
                "rows": result.rows,
                "summary": result.summary,
                "seconds": round(elapsed, 1),
            }
    except KeyboardInterrupt:
        print("\ninterrupted; shutting worker pool down", file=sys.stderr)
        return 130
    finally:
        parallel.shutdown()

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(dump, fh, indent=2, default=str)
        print(f"\nwrote {args.out}")
    if failed:
        print(f"\n{len(failed)} experiment(s) incomplete: "
              f"{', '.join(sorted(failed))}", file=sys.stderr)
        for name in sorted(failed):
            print(f"  {name}: {len(failed[name].failures)} failed run(s)",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
