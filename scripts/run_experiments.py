#!/usr/bin/env python3
"""Regenerate every paper table/figure and emit the EXPERIMENTS.md data.

Runs the full experiment matrix (all applications in each study) on the
chosen machine configuration and prints each reproduced figure as a
text table, plus a machine-readable JSON dump.

Usage:
    python scripts/run_experiments.py [--config small|medium|full]
                                      [--out results.json]
                                      [--only fig7,fig8,...]
                                      [--jobs N]

``--jobs N`` (or ``REPRO_JOBS=N``) fans the simulation matrix out over
N worker processes; results are identical to a serial run. Completed
runs are persisted in the on-disk cache (``REPRO_CACHE_DIR``), so
re-invocations skip simulation entirely.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.gpu.config import GPUConfig
from repro.harness import figures, parallel
from repro.harness.extensions import (
    ablation_study,
    md_cache_sweep,
    memoization_study,
    prefetch_study,
    scheduler_study,
)
from repro.harness.report import render_table

CONFIGS = {
    "small": GPUConfig.small,
    "medium": GPUConfig.medium,
    "full": GPUConfig,
}


def experiment_matrix(config: GPUConfig):
    """(name, thunk) for every experiment, in paper order."""
    return [
        ("tab1", lambda: figures.tab1_system_config()),
        ("fig1", lambda: figures.fig1_cycle_breakdown(config)),
        ("fig2", lambda: figures.fig2_unallocated_registers()),
        ("fig5", lambda: figures.fig5_bdi_example()),
        ("fig7", lambda: figures.fig7_performance(config)),
        ("fig8", lambda: figures.fig8_bandwidth(config)),
        ("fig9", lambda: figures.fig9_energy(config)),
        ("fig10", lambda: figures.fig10_algorithms(config)),
        ("fig11", lambda: figures.fig11_compression_ratio()),
        ("fig12", lambda: figures.fig12_bw_sensitivity(config)),
        ("fig13", lambda: figures.fig13_cache_compression(config)),
        ("mdcache", lambda: figures.md_cache_study(config)),
        ("memo", lambda: memoization_study(config)),
        ("prefetch", lambda: prefetch_study(config)),
        ("ablations", lambda: ablation_study(config)),
        ("scheduler", lambda: scheduler_study(config)),
        ("mdsweep", lambda: md_cache_sweep(config)),
    ]


def _jobs_arg(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--config", choices=sorted(CONFIGS), default="small")
    parser.add_argument("--out", default=None, help="JSON output path")
    parser.add_argument("--only", default=None,
                        help="comma-separated experiment ids")
    parser.add_argument("--jobs", type=_jobs_arg, default=None,
                        help="simulation worker processes "
                             "(default: REPRO_JOBS or 1)")
    args = parser.parse_args()

    engine = parallel.configure(jobs=args.jobs)
    config = CONFIGS[args.config]()
    wanted = set(args.only.split(",")) if args.only else None
    dump = {"config": args.config, "jobs": engine.jobs}

    for name, thunk in experiment_matrix(config):
        if wanted is not None and name not in wanted:
            continue
        start = time.time()
        result = thunk()
        elapsed = time.time() - start
        print()
        print(render_table(result))
        print(f"[{name} took {elapsed:.1f}s]")
        sys.stdout.flush()
        dump[name] = {
            "title": result.title,
            "columns": result.columns,
            "rows": result.rows,
            "summary": result.summary,
            "seconds": round(elapsed, 1),
        }

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(dump, fh, indent=2, default=str)
        print(f"\nwrote {args.out}")
    parallel.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
